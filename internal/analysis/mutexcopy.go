package analysis

import (
	"go/ast"
	"go/types"
)

// Mutexcopy flags functions that pass or return a lock by value: a
// parameter, result or method receiver whose type is (or embeds, through
// struct or array fields) sync.Mutex, sync.RWMutex, sync.WaitGroup,
// sync.Once, sync.Cond, sync.Map, sync.Pool or a sync/atomic value type.
// A copied lock guards nothing — the copy and the original lock
// independently — which is exactly the failure mode that would corrupt
// the parallel experiment engine. Pass a pointer instead.
var Mutexcopy = &Analyzer{
	Name:     "mutexcopy",
	Doc:      "sync.Mutex/WaitGroup (or types containing one) passed, returned or received by value; pass a pointer",
	Severity: Error,
	Run:      runMutexcopy,
}

func init() { Register(Mutexcopy) }

// lockTypes are the by-value-unsafe named types, keyed by package path.
var lockTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

func runMutexcopy(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Recv != nil {
					checkFieldList(pass, fn.Recv, "receiver")
				}
				checkFieldList(pass, fn.Type.Params, "parameter")
				checkFieldList(pass, fn.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(pass, fn.Type.Params, "parameter")
				checkFieldList(pass, fn.Type.Results, "result")
			}
			return true
		})
	}
}

func checkFieldList(pass *Pass, fl *ast.FieldList, role string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lock := lockIn(t, map[types.Type]bool{}); lock != "" {
			pass.Reportf(field.Type.Pos(), "%s of type %s copies %s by value; a copied lock guards nothing — pass a pointer",
				role, types.TypeString(t, types.RelativeTo(pass.Pkg)), lock)
		}
	}
}

// lockIn returns the name of the lock type t carries by value ("" when
// none): t itself, or a lock reached through struct fields, array
// elements or named underlying types. Pointers, slices, maps, channels
// and interfaces break the chain — they share, not copy.
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			if names := lockTypes[pkg.Path()]; names != nil && names[obj.Name()] {
				return pkg.Path() + "." + obj.Name()
			}
		}
		return lockIn(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockIn(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	case *types.Alias:
		return lockIn(types.Unalias(t), seen)
	}
	return ""
}
