package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// ignoreDirective is the suppression comment prefix the driver honors:
// //opprox:vet-ignore <analyzer>[,<analyzer>...] on the flagged line or
// the line directly above it.
const ignoreDirective = "opprox:vet-ignore"

// Run executes the analyzers over the packages and returns every
// diagnostic — suppressed ones included, marked — sorted by file, line,
// column and analyzer. A nil analyzer slice means All().
func (l *Loader) Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = All()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppress := suppressions(l, pkg)
		origins := stmtOrigins(l, pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				relFile:  l.relFile,
				report: func(d Diagnostic) {
					d.Suppressed = suppress[d.File].covers(d.Line, origins[d.File].originOf(d.Line), d.Analyzer)
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column and analyzer —
// the canonical report order every runner (plain or cached) produces.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// relFile maps an absolute filename to a module-relative slash path, so
// diagnostics and golden files are machine-independent.
func (l *Loader) relFile(name string) string {
	if rel, err := filepath.Rel(l.moduleDir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// ignoreSet records, per line, which analyzers an //opprox:vet-ignore
// comment silences ("all" silences every analyzer).
type ignoreSet map[int]map[string]bool

// covers reports whether the set silences the analyzer at the line. The
// directive may sit on the flagged line or the line above it; for a
// finding inside a multi-line statement or composite literal, it may
// equally sit on — or directly above — the first line of the enclosing
// statement (origin), so suppressing e.g. a rand call buried in a
// multi-line struct literal does not require splitting the literal.
func (s ignoreSet) covers(line, origin int, analyzer string) bool {
	for _, ln := range [4]int{line, line - 1, origin, origin - 1} {
		if names := s[ln]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// originSet maps a source line to the start line of the innermost
// statement spanning it, for one file. Innermost keeps the directive
// scope tight: a finding on its own single-line statement still resolves
// to that line, not to some enclosing block.
type originSet []stmtSpan

type stmtSpan struct{ start, end int }

// originOf returns the start line of the smallest statement span covering
// line, or line itself when no statement spans it.
func (s originSet) originOf(line int) int {
	best, bestSize := line, int(^uint(0)>>1)
	for _, sp := range s {
		if sp.start <= line && line <= sp.end && sp.end-sp.start < bestSize {
			best, bestSize = sp.start, sp.end-sp.start
		}
	}
	return best
}

// stmtOrigins records, per module-relative filename, the line spans of
// every leaf statement in the package, so suppression matching can map a
// finding on a continuation line back to its statement's first line.
// Only statements with no nested statements qualify — a multi-line
// assignment, call or return wrapping a composite literal or a wrapped
// argument list — never a block or control-flow statement, whose span
// would let one directive silence an arbitrarily large body. Single-line
// spans are skipped: for those, origin == line already.
func stmtOrigins(l *Loader, pkg *Package) map[string]originSet {
	out := map[string]originSet{}
	for _, f := range pkg.Files {
		name := l.relFile(l.Fset.Position(f.Pos()).Filename)
		var spans originSet
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(ast.Stmt); !ok {
				return true
			}
			start := l.Fset.Position(n.Pos()).Line
			end := l.Fset.Position(n.End()).Line
			if end > start && !hasNestedStmt(n) {
				spans = append(spans, stmtSpan{start, end})
			}
			return true
		})
		if spans != nil {
			out[name] = spans
		}
	}
	return out
}

// hasNestedStmt reports whether the statement contains another statement
// (a block, a clause body, a func literal with a body...).
func hasNestedStmt(stmt ast.Node) bool {
	nested := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if nested || n == nil || n == stmt {
			return !nested
		}
		if _, ok := n.(ast.Stmt); ok {
			nested = true
		}
		return !nested
	})
	return nested
}

// suppressions scans a package's comments for ignore directives, keyed by
// module-relative filename.
func suppressions(l *Loader, pkg *Package) map[string]ignoreSet {
	out := map[string]ignoreSet{}
	for _, f := range pkg.Files {
		var set ignoreSet
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c)
				if !ok {
					continue
				}
				if set == nil {
					set = ignoreSet{}
				}
				line := l.Fset.Position(c.Pos()).Line
				if set[line] == nil {
					set[line] = map[string]bool{}
				}
				for _, n := range names {
					set[line][n] = true
				}
			}
		}
		if set != nil {
			out[l.relFile(l.Fset.Position(f.Pos()).Filename)] = set
		}
	}
	return out
}

// parseIgnore extracts the analyzer names from one comment, if it is an
// ignore directive.
func parseIgnore(c *ast.Comment) ([]string, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil, false // block comments are not directives
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), ignoreDirective)
	if !ok {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(text, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
