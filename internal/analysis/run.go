package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// ignoreDirective is the suppression comment prefix the driver honors:
// //opprox:vet-ignore <analyzer>[,<analyzer>...] on the flagged line or
// the line directly above it.
const ignoreDirective = "opprox:vet-ignore"

// Run executes the analyzers over the packages and returns every
// diagnostic — suppressed ones included, marked — sorted by file, line,
// column and analyzer. A nil analyzer slice means All().
func (l *Loader) Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = All()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppress := suppressions(l, pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				relFile:  l.relFile,
				report: func(d Diagnostic) {
					d.Suppressed = suppress[d.File].covers(d.Line, d.Analyzer)
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// relFile maps an absolute filename to a module-relative slash path, so
// diagnostics and golden files are machine-independent.
func (l *Loader) relFile(name string) string {
	if rel, err := filepath.Rel(l.moduleDir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// ignoreSet records, per line, which analyzers an //opprox:vet-ignore
// comment silences ("all" silences every analyzer).
type ignoreSet map[int]map[string]bool

// covers reports whether the set silences the analyzer at the line (the
// directive may sit on the flagged line or the line above it).
func (s ignoreSet) covers(line int, analyzer string) bool {
	for _, ln := range [2]int{line, line - 1} {
		if names := s[ln]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// suppressions scans a package's comments for ignore directives, keyed by
// module-relative filename.
func suppressions(l *Loader, pkg *Package) map[string]ignoreSet {
	out := map[string]ignoreSet{}
	for _, f := range pkg.Files {
		var set ignoreSet
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c)
				if !ok {
					continue
				}
				if set == nil {
					set = ignoreSet{}
				}
				line := l.Fset.Position(c.Pos()).Line
				if set[line] == nil {
					set[line] = map[string]bool{}
				}
				for _, n := range names {
					set[line][n] = true
				}
			}
		}
		if set != nil {
			out[l.relFile(l.Fset.Position(f.Pos()).Filename)] = set
		}
	}
	return out
}

// parseIgnore extracts the analyzer names from one comment, if it is an
// ignore directive.
func parseIgnore(c *ast.Comment) ([]string, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil, false // block comments are not directives
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), ignoreDirective)
	if !ok {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(text, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
