package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"opprox/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// sharedLoader hands every test the same loader, so the standard library
// is type-checked once per test binary.
var sharedLoader = sync.OnceValues(func() (*analysis.Loader, error) {
	return analysis.NewLoader(".")
})

func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// render serializes diagnostics into the golden-file format: one
// String() line per finding, suppressed ones marked.
func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		if d.Suppressed {
			b.WriteString(" (suppressed)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden runs each analyzer over its seeded fixture and asserts the
// diagnostics match the golden file exactly. The maporder fixture
// reconstructs the PR 1 map-order bug, which the analyzer must flag.
func TestGolden(t *testing.T) {
	cases := []struct {
		name   string
		asPath string // import-path override (walltime must pose as internal/core)
	}{
		{name: "maporder"},
		{name: "globalrand"},
		{name: "walltime", asPath: "opprox/internal/core/walltimefixture"},
		{name: "mutexcopy"},
		{name: "floatacc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := analysis.Lookup(tc.name)
			if a == nil {
				t.Fatalf("analyzer %q not registered", tc.name)
			}
			l := loader(t)
			pkg, err := l.LoadDir(filepath.Join("testdata", "src", tc.name), tc.asPath)
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			diags := l.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
			if len(diags) == 0 {
				t.Fatalf("analyzer %q found nothing in its seeded fixture", tc.name)
			}
			got := render(diags)

			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run `go test -run TestGolden -update ./internal/analysis` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuppression covers every spelling of the ignore directive.
func TestSuppression(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"), "")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := l.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Lookup("globalrand")})
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5:\n%s", len(diags), render(diags))
	}
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 4 {
		t.Errorf("got %d suppressed, want 4:\n%s", suppressed, render(diags))
	}
	unsuppressed := analysis.Unsuppressed(diags, analysis.Info)
	if len(unsuppressed) != 1 || unsuppressed[0].Line != 30 {
		t.Errorf("want exactly the WrongName finding (line 30) unsuppressed, got:\n%s", render(unsuppressed))
	}
}

// TestSelfCheck runs the full analyzer set over the whole repository and
// asserts zero unsuppressed findings — the invariant the tier-1 gate
// enforces from now on.
func TestSelfCheck(t *testing.T) {
	l := loader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load ./... returned %d packages; expected the whole module", len(pkgs))
	}
	diags := l.Run(pkgs, nil)
	if bad := analysis.Unsuppressed(diags, analysis.Info); len(bad) > 0 {
		t.Errorf("repository has %d unsuppressed findings:\n%s", len(bad), render(bad))
	}
}

// TestFixturesSkippedByPatterns asserts recursive patterns skip testdata:
// the fixtures deliberately violate every invariant, and must never leak
// into a ./... run.
func TestFixturesSkippedByPatterns(t *testing.T) {
	l := loader(t)
	pkgs, err := l.Load("internal/analysis/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("pattern expansion descended into %s", p.Path)
		}
	}
	if len(pkgs) != 2 {
		t.Errorf("got %d packages, want internal/analysis and internal/analysis/discover", len(pkgs))
	}
}

// TestReportCounts pins the JSON report's summary fields.
func TestReportCounts(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"), "")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	analyzers := []*analysis.Analyzer{analysis.Lookup("globalrand")}
	diags := l.Run([]*analysis.Package{pkg}, analyzers)
	rep := analysis.NewReport([]string{"testdata/src/suppress"}, []*analysis.Package{pkg}, analyzers, diags)
	if rep.Packages != 1 || rep.Suppressed != 4 || rep.BySeverity["error"] != 1 {
		t.Errorf("report summary wrong: packages=%d suppressed=%d by_severity=%v",
			rep.Packages, rep.Suppressed, rep.BySeverity)
	}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"analyzer": "globalrand"`, `"severity": "error"`, `"suppressed": 4`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON report missing %s:\n%s", want, b.String())
		}
	}
}

// TestSeverityRoundTrip pins severity parsing and JSON encoding.
func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []analysis.Severity{analysis.Info, analysis.Warning, analysis.Error} {
		parsed, err := analysis.ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), parsed, err)
		}
		b, err := s.MarshalJSON()
		if err != nil || string(b) != fmt.Sprintf("%q", s.String()) {
			t.Errorf("MarshalJSON(%v) = %s, %v", s, b, err)
		}
		var back analysis.Severity
		if err := back.UnmarshalJSON(b); err != nil || back != s {
			t.Errorf("UnmarshalJSON(%s) = %v, %v", b, back, err)
		}
	}
	if _, err := analysis.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) should fail")
	}
}
