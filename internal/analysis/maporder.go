package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags range-over-map loops whose bodies have order-dependent
// effects — the bug class PR 1 had to hand-fix in multi-class model
// fitting. Go's map iteration order is deliberately randomized, so a body
// that appends to an outer slice, writes output, or feeds a hash or
// encoder produces run-to-run different results. The canonical fix —
// collect the keys, sort them, then iterate the sorted slice — is
// recognized and not flagged: an append of loop state into a variable
// that a following statement passes to sort or slices is exempt.
var Maporder = &Analyzer{
	Name:     "maporder",
	Doc:      "order-dependent effects (append to outer slice, output, hashing/encoding) inside range-over-map; iterate sorted keys instead",
	Severity: Error,
	Run:      runMaporder,
}

func init() { Register(Maporder) }

// sinkPkgPrefixes are packages whose package-level functions make map
// iteration order observable: formatted output, raw writes, encoders and
// hashes.
var sinkPkgPrefixes = []string{
	"fmt", "io", "bufio", "encoding", "hash", "crypto", "compress",
}

// sinkMethods are method names that make iteration order observable on
// any receiver (writers, encoders, hashes).
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		stmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.Info, rs) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		})
	}
}

// checkMapRange inspects one map-range body; rest is the statement list
// following the loop, consulted for the sort-after-collect exemption.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target := appendTarget(pass.Info, call); target != nil {
			if declaredOutside(target, rs) && !sortedAfter(pass.Info, rest, target) {
				pass.Reportf(call.Pos(), "append to %q inside range over map %s depends on iteration order; collect keys and sort, or sort %q before use",
					target.Name(), typeLabel(pass, rs.X), target.Name())
			}
			return true
		}
		if path, name, ok := pkgCall(pass.Info, call); ok {
			if isSinkPkg(path) {
				pass.Reportf(call.Pos(), "%s.%s inside range over map %s emits in iteration order; iterate sorted keys",
					path, name, typeLabel(pass, rs.X))
			}
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal && sinkMethods[sel.Sel.Name] {
				pass.Reportf(call.Pos(), "%s call inside range over map %s feeds a writer/hash in iteration order; iterate sorted keys",
					sel.Sel.Name, typeLabel(pass, rs.X))
			}
		}
		return true
	})
}

// appendTarget returns the variable a built-in append call grows, or nil
// when the call is not an append of that shape.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return objOf(info, call.Args[0])
}

// sortedAfter reports whether a statement after the loop passes the
// collected variable to sort or slices — the sorted-keys idiom.
func sortedAfter(info *types.Info, rest []ast.Stmt, target types.Object) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, _, ok := pkgCall(info, call); !ok || (path != "sort" && path != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentions(info, arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSinkPkg reports whether a package path is an output/encoding/hash
// package whose calls expose iteration order.
func isSinkPkg(path string) bool {
	for _, p := range sinkPkgPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// typeLabel renders the ranged expression's type for messages.
func typeLabel(pass *Pass, x ast.Expr) string {
	t := pass.Info.TypeOf(x)
	if t == nil {
		return "(unknown)"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
