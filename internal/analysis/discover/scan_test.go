package discover_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"opprox/internal/analysis"
	"opprox/internal/analysis/discover"
)

var update = flag.Bool("update", false, "rewrite golden files from current scanner output")

// sharedLoader hands every test the same loader, so the standard library
// and the apps are type-checked once per test binary.
var sharedLoader = sync.OnceValues(func() (*analysis.Loader, error) {
	return analysis.NewLoader(".")
})

func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func scan(t *testing.T, opts discover.Options, patterns ...string) *discover.Report {
	t.Helper()
	rep, err := discover.NewScanner(loader(t)).Scan(opts, patterns...)
	if err != nil {
		t.Fatalf("Scan(%v): %v", patterns, err)
	}
	return rep
}

func renderText(t *testing.T, rep *discover.Report) string {
	t.Helper()
	var b strings.Builder
	if err := rep.RenderText(&b); err != nil {
		t.Fatalf("RenderText: %v", err)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test -run %s -update ./internal/analysis/discover` to create): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestKernelsGolden pins the scanner's classification of the fixture:
// which loops qualify, their kinds, knobs, reductions and scores.
func TestKernelsGolden(t *testing.T) {
	rep := scan(t, discover.Options{}, "internal/analysis/discover/testdata/src/kernels")
	checkGolden(t, "kernels.golden", renderText(t, rep))

	// Structural spot checks independent of the golden bytes.
	byFunc := map[string]discover.Candidate{}
	for _, c := range rep.Candidates {
		byFunc[c.Func] = c
	}
	if c, ok := byFunc["Map"]; !ok || c.Kind != "combinator" {
		t.Errorf("Map should yield a combinator candidate, got %+v", byFunc["Map"])
	}
	if c, ok := byFunc["Smooth"]; !ok || c.FloatOps < 3 {
		t.Errorf("Smooth should count blend's ops interprocedurally, got %+v", byFunc["Smooth"])
	}
	if _, ok := byFunc["GlobalWriter"]; ok {
		t.Error("GlobalWriter writes package state and must not qualify")
	}
	if _, ok := byFunc["Scratch"]; ok {
		t.Error("Scratch only writes loop-local state and must not qualify")
	}
	if c, ok := byFunc["Channeled"]; !ok || c.Kind != "range" || c.Depth != 1 {
		t.Errorf("Channeled's inner loop (only) should qualify, got %+v", byFunc["Channeled"])
	}
}

// TestAppsGolden is the checked-in ranked report over internal/apps — the
// discovery pass run against the five hand-instrumented applications.
func TestAppsGolden(t *testing.T) {
	rep := scan(t, discover.Options{}, "./internal/apps/...")
	checkGolden(t, "apps.golden", renderText(t, rep))
}

// TestAppsAnchors asserts every hand-built approximable block in the five
// apps is discovered: for each block, some candidate's line span must
// contain the anchor line inside the block's implementing loop.
func TestAppsAnchors(t *testing.T) {
	anchors := []struct {
		app, block, file string
		line             int
	}{
		{"pso", "fitness", "internal/apps/pso/pso.go", 219},
		{"pso", "velocity", "internal/apps/pso/pso.go", 185},
		{"pso", "position", "internal/apps/pso/pso.go", 205},
		{"lulesh", "forces", "internal/apps/lulesh/lulesh.go", 208},
		{"lulesh", "positions", "internal/apps/lulesh/lulesh.go", 227},
		{"lulesh", "strain", "internal/apps/lulesh/lulesh.go", 266},
		{"lulesh", "timeconstraints", "internal/apps/lulesh/lulesh.go", 175},
		{"comd", "position", "internal/apps/comd/comd.go", 217},
		{"comd", "force", "internal/apps/comd/comd.go", 179},
		{"comd", "velocity", "internal/apps/comd/comd.go", 237},
		{"tracker", "features", "internal/apps/tracker/tracker.go", 170},
		{"tracker", "likelihood", "internal/apps/tracker/tracker.go", 187},
		{"tracker", "minparticles", "internal/apps/tracker/tracker.go", 229},
		{"tracker", "layers", "internal/apps/tracker/tracker.go", 239},
		{"vidpipe", "edge", "internal/apps/vidpipe/vidpipe.go", 165},
		{"vidpipe", "deflate", "internal/apps/vidpipe/vidpipe.go", 195},
		{"vidpipe", "encode", "internal/apps/vidpipe/vidpipe.go", 281},
	}
	rep := scan(t, discover.Options{}, "./internal/apps/...")
	for _, a := range anchors {
		found := false
		for _, c := range rep.Candidates {
			if c.File == a.file && c.StartLine <= a.line && a.line <= c.EndLine {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s/%s: no candidate spans %s:%d", a.app, a.block, a.file, a.line)
		}
	}
}

// TestScanDeterminism asserts the JSON report is byte-identical across
// repeated runs and across -parallel settings.
func TestScanDeterminism(t *testing.T) {
	render := func(parallel int) []byte {
		rep := scan(t, discover.Options{Parallel: parallel}, "./internal/apps/...")
		var b bytes.Buffer
		if err := rep.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.Bytes()
	}
	serial := render(1)
	if again := render(1); !bytes.Equal(serial, again) {
		t.Error("two serial scans produced different JSON")
	}
	if par := render(4); !bytes.Equal(serial, par) {
		t.Error("parallel=4 scan JSON differs from serial")
	}
}

// TestHarnessGolden pins the generated skeleton and proves it type-checks
// against the real approx and launch packages.
func TestHarnessGolden(t *testing.T) {
	rep := scan(t, discover.Options{}, "./internal/apps/...")
	src, err := discover.GenerateHarness(rep, "appsharness")
	if err != nil {
		t.Fatalf("GenerateHarness: %v", err)
	}
	checkGolden(t, "apps_harness.golden", string(src))

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "harness.go"), src, 0o644); err != nil {
		t.Fatalf("write harness: %v", err)
	}
	pkg, err := loader(t).LoadDir(dir, "opprox/internal/appsharnesscheck")
	if err != nil {
		t.Fatalf("generated harness does not type-check: %v", err)
	}
	if pkg == nil {
		t.Fatal("generated harness yielded no package")
	}
}

// TestMinOpsFilter asserts the -min-ops knob prunes thin candidates.
func TestMinOpsFilter(t *testing.T) {
	all := scan(t, discover.Options{}, "./internal/apps/...")
	dense := scan(t, discover.Options{MinOps: 10}, "./internal/apps/...")
	if len(dense.Candidates) == 0 || len(dense.Candidates) >= len(all.Candidates) {
		t.Fatalf("MinOps=10 kept %d of %d candidates; expected a strict non-empty subset",
			len(dense.Candidates), len(all.Candidates))
	}
	for _, c := range dense.Candidates {
		if c.FloatOps < 10 {
			t.Errorf("candidate %s has %d ops, below MinOps", c.Name, c.FloatOps)
		}
	}
}
