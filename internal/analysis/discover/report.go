package discover

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// SchemaVersion is the version stamped into scan reports. Bump on any
// change to the Report or Candidate JSON shape.
const SchemaVersion = 1

// Report is the output of one discovery scan.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// GoVersion records the toolchain the scan ran under. Text rendering
	// omits it so golden files stay toolchain-independent.
	GoVersion string `json:"go_version,omitempty"`
	// Module is the scanned module's path.
	Module string `json:"module"`
	// Patterns are the package patterns scanned.
	Patterns []string `json:"patterns"`
	// Packages is the number of packages the patterns matched.
	Packages int `json:"packages"`
	// Candidates are the discovered blocks, ranked by score.
	Candidates []Candidate `json:"candidates"`
}

func newReport(module string, patterns []string, packages int, cands []Candidate) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		Module:        module,
		Patterns:      patterns,
		Packages:      packages,
		Candidates:    cands,
	}
}

// WriteJSON writes the report as indented JSON. The encoding is
// byte-deterministic for a given tree and toolchain: candidate order is
// canonical and struct fields marshal in declaration order.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderText writes the human-oriented ranking. It omits the Go version,
// so the same tree renders identically across toolchains — the form
// golden tests pin.
func (r *Report) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %d packages, %d candidates\n", r.Module, r.Packages, len(r.Candidates)); err != nil {
		return err
	}
	for i, c := range r.Candidates {
		if _, err := fmt.Fprintf(w, "#%d %s score=%.3f %s:%d-%d %s [%s] depth=%d ops=%d stmts=%d\n",
			i+1, c.Name, c.Score, c.File, c.StartLine, c.EndLine, c.Func, c.Kind, c.Depth, c.FloatOps, c.Stmts); err != nil {
			return err
		}
		for _, k := range c.Knobs {
			if _, err := fmt.Fprintf(w, "   knob %s %q line %d\n", k.Kind, k.Name, k.Line); err != nil {
				return err
			}
		}
		if len(c.Reduces) > 0 {
			if _, err := fmt.Fprintf(w, "   reduces %v\n", c.Reduces); err != nil {
				return err
			}
		}
	}
	return nil
}
