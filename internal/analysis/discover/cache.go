package discover

import (
	"fmt"
	"sort"

	"opprox/internal/analysis"
)

// scanCacheEpoch invalidates every scan cache entry when bumped. The salt
// additionally covers the scanner and analysis implementation sources (in
// the self-hosting case), the Go version and MinOps, so behavior changes
// invalidate automatically.
const scanCacheEpoch = "opprox-scan-cache/v1"

// scanEntry is one cached package's candidates.
type scanEntry struct {
	Package    string      `json:"package"`
	Candidates []Candidate `json:"candidates"`
}

// RunCached is the incremental form of Scan: per-package candidate lists
// are cached under the same content-addressed scheme opprox-vet uses
// (analysis.GraphHashes), so a warm run re-scans only packages whose
// sources — or in-module dependency closure — changed. The report is
// byte-identical to an uncached Scan over the same tree, minus nothing:
// candidates are produced per package either way and merged in the
// canonical rank order (the cache-coherence invariant, DESIGN.md §13).
// A nil cache degrades to a plain uncached scan.
func RunCached(l *analysis.Loader, c *analysis.Cache, opts Options, patterns []string) (*Report, analysis.CacheStats, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	minOps := opts.MinOps
	if minOps < 1 {
		minOps = 1
	}
	salt := l.CacheSalt(fmt.Sprintf("%s/minops=%d", scanCacheEpoch, minOps), nil,
		"internal/analysis", "internal/analysis/discover")
	roots, err := l.GraphHashes(salt, patterns...)
	if err != nil {
		return nil, analysis.CacheStats{}, err
	}
	stats := analysis.CacheStats{Packages: len(roots)}
	lists := make([][]Candidate, len(roots))
	var missIdx []int
	var missPkgs []*analysis.Package
	for i, ph := range roots {
		var e scanEntry
		if c != nil && c.Get("scan", ph.Hash, &e) && e.Package == ph.Path {
			stats.Hits++
			lists[i] = e.Candidates
			continue
		}
		pkg, err := l.LoadDir(ph.Dir, "")
		if err != nil {
			return nil, stats, err
		}
		if pkg == nil {
			return nil, stats, fmt.Errorf("discover: no Go files in %s", ph.Path)
		}
		missIdx = append(missIdx, i)
		missPkgs = append(missPkgs, pkg)
		stats.Analyzed = append(stats.Analyzed, ph.Path)
	}
	if len(missPkgs) > 0 {
		sc := NewScanner(l)
		scanned, err := sc.scanPackages(opts, missPkgs)
		if err != nil {
			return nil, stats, err
		}
		for j, i := range missIdx {
			lists[i] = scanned[j]
			if c != nil {
				if err := c.Put("scan", roots[i].Hash, scanEntry{Package: roots[i].Path, Candidates: scanned[j]}); err != nil {
					return nil, stats, fmt.Errorf("discover: writing cache entry for %s: %w", roots[i].Path, err)
				}
			}
		}
	}
	sort.Strings(stats.Analyzed)
	var cands []Candidate
	for _, list := range lists {
		cands = append(cands, list...)
	}
	SortCandidates(cands)
	return newReport(l.ModulePath(), patterns, len(roots), cands), stats, nil
}
