// Package discover implements opprox-scan's static discovery pass: it
// walks a module's packages and identifies candidate approximable blocks
// (ABs) — float-dominated loop nests, free of side effects, that reduce
// into state living outside the loop — and ranks them by a static
// approximability score. The output is the starting inventory a tuner
// (or a human) refines into the hand-curated block lists the apps ship
// with; every hand-built AB in internal/apps surfaces here first.
package discover

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"

	"opprox/internal/analysis"
)

// Knob kinds: the syntactic shapes a tuner can turn into an approximation
// lever inside a candidate block.
const (
	// KnobStride — an integer remainder (i % k): a sampling stride.
	KnobStride = "stride"
	// KnobThreshold — a comparison against a numeric constant: a
	// convergence tolerance or cutoff.
	KnobThreshold = "threshold"
	// KnobConst — a use of a named package-level numeric constant: an
	// iteration count, degree or resolution parameter.
	KnobConst = "const"
	// KnobLevel — a call to an approx combinator (or other higher-order
	// iterator): the level argument is the knob.
	KnobLevel = "level"
)

// Knob is one tunable lever discovered inside a candidate block.
type Knob struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	Line int    `json:"line"`
}

// Candidate is one discovered approximable-block candidate.
type Candidate struct {
	// Name is a stable generated identifier: <func>_l<startline>.
	Name string `json:"name"`
	// Pkg is the import path of the containing package.
	Pkg string `json:"pkg"`
	// File is the module-relative source file.
	File string `json:"file"`
	// Func is the enclosing declared function, receiver-qualified for
	// methods ("(*App).Run").
	Func string `json:"func"`
	// StartLine and EndLine span the block in File.
	StartLine int `json:"start_line"`
	EndLine   int `json:"end_line"`
	// Kind is "loop" (for), "range", or "combinator" (a call carrying a
	// func-literal body — the shape of every approx.* combinator).
	Kind string `json:"kind"`
	// Depth is the loop-nest depth of the block, callees included.
	Depth int `json:"depth"`
	// FloatOps and Stmts are the measured arithmetic density inputs.
	FloatOps int `json:"float_ops"`
	Stmts    int `json:"stmts"`
	// Knobs are the tunable levers found in the block, deduplicated.
	Knobs []Knob `json:"knobs,omitempty"`
	// Reduces names the loop-carried reduction targets declared outside
	// the block — the variables whose values survive it.
	Reduces []string `json:"reduces,omitempty"`
	// Score is the static approximability rank:
	// (float_ops / stmts) * depth * max(1, knobs).
	Score float64 `json:"score"`
}

// Options configures a scan.
type Options struct {
	// MinOps is the minimum number of float operations (callee summaries
	// included) a block must contain. Zero means 1.
	MinOps int
	// Parallel is the number of packages scanned concurrently. Zero or
	// one means serial. The report is identical at any setting.
	Parallel int
}

// Scanner discovers candidate blocks over one loaded module. Function
// summaries are memoized across packages, so shared kernels (a distance
// function used by two apps) are measured once.
type Scanner struct {
	loader *analysis.Loader

	mu        sync.Mutex
	summaries map[*types.Func]summary
}

// NewScanner returns a scanner over the loader's module.
func NewScanner(l *analysis.Loader) *Scanner {
	return &Scanner{loader: l, summaries: map[*types.Func]summary{}}
}

// Scan loads the patterns and returns the discovery report, candidates
// ranked by score. The report is byte-deterministic: candidates are
// produced per package and merged in a canonical order regardless of
// Options.Parallel.
func (s *Scanner) Scan(opts Options, patterns ...string) (*Report, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := s.loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	lists, err := s.scanPackages(opts, pkgs)
	if err != nil {
		return nil, err
	}
	var cands []Candidate
	for _, l := range lists {
		cands = append(cands, l...)
	}
	SortCandidates(cands)
	return newReport(s.loader.ModulePath(), patterns, len(pkgs), cands), nil
}

// scanPackages scans each loaded package, optionally in parallel, and
// returns per-package candidate lists in the packages' order. Loading is
// already done (the loader is not safe for concurrent loads); scanning
// only reads the memoized closure, which is.
func (s *Scanner) scanPackages(opts Options, pkgs []*analysis.Package) ([][]Candidate, error) {
	// Pre-load summaries' source packages serially: scanning resolves
	// callees through Loader.Package, which only sees what Load pulled
	// into the closure. Load of the patterns has already type-checked
	// every in-module dependency, so nothing to do here beyond scanning.
	lists := make([][]Candidate, len(pkgs))
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers <= 1 {
		for i, pkg := range pkgs {
			lists[i] = s.scanPackage(opts, pkg)
		}
		return lists, nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				lists[i] = s.scanPackage(opts, pkgs[i])
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return lists, nil
}

// scanPackage walks every declared function body in pkg.
func (s *Scanner) scanPackage(opts Options, pkg *analysis.Package) []Candidate {
	var out []Candidate
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, s.scanFunc(opts, pkg, fd)...)
		}
	}
	return out
}

// scanFunc finds candidate blocks in one function body. Traversal
// descends into nested statements and function literals; at each loop
// node it measures the subtree and either emits a candidate (and stops
// descending — the outermost qualifying nest wins, keeping candidates
// disjoint) or keeps looking inside for a smaller block that qualifies.
func (s *Scanner) scanFunc(opts Options, pkg *analysis.Package, fd *ast.FuncDecl) []Candidate {
	minOps := opts.MinOps
	if minOps < 1 {
		minOps = 1
	}
	pure := funcTypedParams(pkg.Info, fd.Type)
	var out []Candidate
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			// Func-typed params of nested literals join the assumed-pure
			// set for everything scanned beneath them.
			for obj := range funcTypedParams(pkg.Info, fl.Type) {
				pure[obj] = true
			}
			return true
		}
		kind := loopKind(pkg.Info, n)
		if kind == "" {
			return true
		}
		c, ok := s.tryCandidate(minOps, pkg, fd, n, kind, pure)
		if !ok {
			return true // impure or too thin: look for a smaller block inside
		}
		out = append(out, c)
		return false
	})
	return out
}

// loopKind classifies n as a loop node, returning "" for non-loops.
func loopKind(info *types.Info, n ast.Node) string {
	switch x := n.(type) {
	case *ast.ForStmt:
		return "loop"
	case *ast.RangeStmt:
		return "range"
	case *ast.CallExpr:
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() {
			return "" // conversion
		}
		for _, a := range x.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				return "combinator"
			}
		}
	}
	return ""
}

// tryCandidate measures the subtree at n and decides whether it qualifies:
// side-effect free, at least minOps float operations, and at least one
// write to a variable declared outside the block (otherwise approximating
// it changes nothing an observer can see).
func (s *Scanner) tryCandidate(minOps int, pkg *analysis.Package, fd *ast.FuncDecl, n ast.Node, kind string, pure map[types.Object]bool) (Candidate, bool) {
	w := &walker{
		sc:         s,
		pkg:        pkg,
		info:       pkg.Info,
		pureParams: pure,
		visiting:   map[*types.Func]bool{},
	}
	m := w.measure(n)
	if len(m.impure) > 0 || m.ops < minOps {
		return Candidate{}, false
	}
	var reduces []string
	outer := 0
	seen := map[string]bool{}
	for _, wr := range m.writes {
		if wr.obj.Pos() >= n.Pos() && wr.obj.Pos() < n.End() {
			continue // loop-local scratch
		}
		outer++
		if wr.carried && !seen[wr.obj.Name()] {
			seen[wr.obj.Name()] = true
			reduces = append(reduces, wr.obj.Name())
		}
	}
	if outer == 0 {
		return Candidate{}, false
	}
	sort.Strings(reduces)

	start := s.loader.Fset.Position(n.Pos())
	end := s.loader.Fset.Position(n.End())
	funcName, base := declName(fd)
	c := Candidate{
		Name:      fmt.Sprintf("%s_%s_l%d", pkgBase(pkg.Path), strings.ToLower(base), start.Line),
		Pkg:       pkg.Path,
		File:      s.loader.RelFile(start.Filename),
		Func:      funcName,
		StartLine: start.Line,
		EndLine:   end.Line,
		Kind:      kind,
		Depth:     m.depth,
		FloatOps:  m.ops,
		Stmts:     m.stmts,
		Knobs:     dedupKnobs(m.knobs),
		Reduces:   reduces,
	}
	c.Score = score(c)
	return c, true
}

// score is the static approximability rank: arithmetic density times nest
// depth times knob count. Dense float kernels deep in a nest with many
// tunable levers rank first — exactly the blocks perforation and tuning
// pay off on.
func score(c Candidate) float64 {
	stmts := c.Stmts
	if stmts < 1 {
		stmts = 1
	}
	knobs := len(c.Knobs)
	if knobs < 1 {
		knobs = 1
	}
	return float64(c.FloatOps) / float64(stmts) * float64(c.Depth) * float64(knobs)
}

// pkgBase is the last segment of an import path, lowered — the name
// prefix that keeps candidate names unique across packages (two apps
// easily have a Run loop starting on the same line number).
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return strings.ToLower(path)
}

// declName renders the declared function (receiver-qualified for methods)
// and its bare name for candidate naming.
func declName(fd *ast.FuncDecl) (qualified, base string) {
	base = fd.Name.Name
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base, base
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + base, base
}

// dedupKnobs deduplicates by kind+name (keeping the first line) and sorts
// by line, kind, name.
func dedupKnobs(knobs []Knob) []Knob {
	if len(knobs) == 0 {
		return nil
	}
	sort.Slice(knobs, func(i, j int) bool {
		a, b := knobs[i], knobs[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	out := knobs[:0]
	seen := map[string]bool{}
	for _, k := range knobs {
		key := k.Kind + "\x00" + k.Name
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, k)
	}
	return out
}

// SortCandidates orders candidates by score (descending), then file,
// start line and function — the canonical report order.
func SortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.StartLine != b.StartLine {
			return a.StartLine < b.StartLine
		}
		return a.Func < b.Func
	})
}
