// Package kernels is the discovery-pass fixture: each function exercises
// one classification path of the scanner. Comments name the expectation
// the golden file pins.
package kernels

// maxIter and tol are tunable package-level constants: const knobs.
const (
	maxIter = 100
	tol     = 1e-9
)

// total is package-level state; writing it is a side effect.
var total float64

// Stencil is the classic candidate: a pure float loop reducing into out
// and acc (declared outside), with stride and threshold knobs.
func Stencil(in []float64, out []float64) float64 {
	acc := 0.0
	for i := 1; i < len(in)-1; i++ {
		if i%4 == 0 {
			continue
		}
		v := 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1]
		out[i] = v
		acc += v
	}
	return acc
}

// Helper ops count interprocedurally: the loop body has one direct float
// op; the rest live in blend's summary.
func blend(a, b float64) float64 {
	return 0.5*a + 0.5*b
}

func Smooth(xs []float64) float64 {
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += blend(xs[i-1], xs[i])
	}
	return s
}

// Converge carries threshold and const knobs (tol, maxIter).
func Converge(x float64) float64 {
	for n := 0; n < maxIter; n++ {
		step := x * 0.5
		if step < tol {
			break
		}
		x -= step
	}
	return x
}

// apply is a higher-order iterator: calls carrying a func literal are
// one loop level, like the approx combinators.
func apply(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// Map's combinator call is a candidate of kind "combinator".
func Map(xs []float64) {
	apply(len(xs), func(i int) {
		xs[i] = xs[i] * 1.5
	})
}

// GlobalWriter's loop writes package state: rejected, no candidate.
func GlobalWriter(xs []float64) {
	for _, x := range xs {
		total += x
	}
}

// Channeled's outer loop sends on a channel: rejected. The inner pure
// loop still qualifies on its own.
func Channeled(xs []float64, ch chan float64) {
	for range xs {
		s := 0.0
		for _, x := range xs {
			s += x * x
		}
		ch <- s
	}
}

// Scratch only writes loop-local state; approximating it is unobservable,
// so it is rejected.
func Scratch(xs []float64) {
	for range xs {
		tmp := 0.0
		tmp += 1.0
		_ = tmp
	}
}
