package discover

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"opprox/internal/analysis"
)

// This file measures code: the walker that counts float arithmetic,
// statements and loop-nest depth over an AST subtree, classifies calls,
// and decides side-effect freedom. The measurement is interprocedural
// within the loaded module — a call to an in-module function folds the
// callee's summarized metrics into the caller — so a kernel hidden behind
// a helper (rosenbrock inside a fitness callback, vec3 arithmetic inside
// an integrator) still counts toward the block that invokes it.

// summary is the memoized measurement of one function.
type summary struct {
	// pure reports that the function body has no side effects under the
	// rules in (*walker).call: no I/O or sync packages, no channel or go
	// statements, no package-level variable writes, no calls that cannot
	// be resolved to a body. Calls to the function's own func-typed
	// parameters are assumed pure — the actual callback is judged at the
	// call site where its literal is visible.
	pure bool
	// ops, stmts, depth are the function body's metrics (measure).
	ops, stmts, depth int
}

// pureStdlib are standard-library packages whose package-level functions
// are side-effect free for discovery purposes. sort mutates its argument
// slice, which is caller-visible state, not an external effect — exactly
// like the in-place output writes approximable kernels perform.
var pureStdlib = map[string]bool{
	"math": true, "math/bits": true, "math/cmplx": true,
	"sort": true, "strings": true, "strconv": true,
	"unicode": true, "unicode/utf8": true, "errors": true,
}

// randPkgs are the deterministic-generator packages: calls on a locally
// seeded *rand.Rand are pure for discovery (the globalrand analyzer
// separately polices the shared top-level generator, which is not).
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// impureBuiltins are builtins with observable effects.
var impureBuiltins = map[string]bool{"print": true, "println": true, "panic": true}

// impureModulePkgs are in-module observability sinks whose calls are
// side effects by definition, whatever their bodies look like: a block
// that records trace events or metrics is an instrumentation boundary,
// not an approximable kernel. Without this, Recorder methods (which only
// write through their receiver) would summarize as pure and every app's
// instrumented OUTER loop would swallow its per-AB blocks into one
// whole-body candidate.
var impureModulePkgs = map[string]bool{
	"opprox/internal/trace": true,
	"opprox/internal/obs":   true,
}

// impurity is one reason a subtree is not side-effect free.
type impurity struct {
	pos token.Pos
	why string
}

// write records one assignment to a variable or element, by the base
// object written through.
type write struct {
	obj types.Object
	// carried marks a loop-carried reduction shape: a compound op
	// (+=, *=, ...), an increment, or x = f(x).
	carried bool
	pos     token.Pos
}

// metrics is the measured view of one AST subtree.
type metrics struct {
	ops    int // float arithmetic operations, callee summaries included
	stmts  int // leaf statements, callee summaries included
	depth  int // max loop-nest depth (plain loops, combinator calls, callees)
	impure []impurity
	writes []write
	knobs  []Knob
}

// walker measures one subtree in the context of one package.
type walker struct {
	sc   *Scanner
	pkg  *analysis.Package
	info *types.Info
	// pureParams are func-typed parameters of the enclosing function(s)
	// whose calls are assumed pure.
	pureParams map[types.Object]bool
	// visiting guards summary recursion against call cycles.
	visiting map[*types.Func]bool

	depth int
}

// measure walks root and accumulates metrics.
func (w *walker) measure(root ast.Node) *metrics {
	m := &metrics{}
	w.depth = 0
	var stack []bool
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			if stack[len(stack)-1] {
				w.depth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		inc := false
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inc = true
		case *ast.CallExpr:
			inc = w.call(m, x)
		case *ast.BinaryExpr:
			w.binary(m, x)
		case *ast.AssignStmt:
			m.stmts++
			w.assign(m, x)
		case *ast.IncDecStmt:
			m.stmts++
			w.write(m, x.X, true, x.Pos())
		case *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt, *ast.BranchStmt:
			m.stmts++
		case *ast.Ident:
			w.constKnob(m, x)
		case *ast.GoStmt:
			m.impure = append(m.impure, impurity{x.Pos(), "starts a goroutine"})
		case *ast.SendStmt:
			m.impure = append(m.impure, impurity{x.Pos(), "sends on a channel"})
		case *ast.SelectStmt:
			m.impure = append(m.impure, impurity{x.Pos(), "selects on channels"})
		case *ast.DeferStmt:
			m.impure = append(m.impure, impurity{x.Pos(), "defers a call"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				m.impure = append(m.impure, impurity{x.Pos(), "receives from a channel"})
			}
		}
		if inc {
			w.depth++
			if w.depth > m.depth {
				m.depth = w.depth
			}
		}
		stack = append(stack, inc)
		return true
	})
	return m
}

// binary counts float arithmetic and records stride/threshold knobs.
func (w *walker) binary(m *metrics, x *ast.BinaryExpr) {
	switch x.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		if isFloat(w.info.TypeOf(x)) {
			m.ops++
		}
	case token.REM:
		m.knobs = append(m.knobs, Knob{
			Kind: KnobStride,
			Name: types.ExprString(x.Y),
			Line: w.line(x.Pos()),
		})
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		// Float comparisons are float ALU work too — a min/max filter or
		// clamp kernel is all comparisons and still approximable.
		if isFloat(w.info.TypeOf(x.X)) || isFloat(w.info.TypeOf(x.Y)) {
			m.ops++
		}
		cx, cy := w.constOf(x.X), w.constOf(x.Y)
		if (cx == "") == (cy == "") {
			return // knob shape is expr-vs-constant, not const-vs-const
		}
		name := cx
		if name == "" {
			name = cy
		}
		if isNumeric(w.info.TypeOf(x.X)) || isNumeric(w.info.TypeOf(x.Y)) {
			m.knobs = append(m.knobs, Knob{Kind: KnobThreshold, Name: name, Line: w.line(x.Pos())})
		}
	}
}

// constOf renders a compile-time constant operand: the constant's name if
// it is a named constant, its value otherwise, "" if not constant.
func (w *walker) constOf(e ast.Expr) string {
	e = ast.Unparen(e)
	tv, ok := w.info.Types[e]
	if !ok || tv.Value == nil {
		return ""
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	// Short human form, not ExactString: a float literal's exact rational
	// would be an unreadable page-wide fraction.
	return tv.Value.String()
}

// constKnob records a use of a named package-level numeric constant — an
// iteration count, tolerance or degree a tuner could turn into a knob.
func (w *walker) constKnob(m *metrics, id *ast.Ident) {
	c, ok := w.info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() || !isNumeric(c.Type()) {
		return
	}
	m.knobs = append(m.knobs, Knob{Kind: KnobConst, Name: id.Name, Line: w.line(id.Pos())})
}

// assign records writes and counts compound float arithmetic.
func (w *walker) assign(m *metrics, as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return // declares new locals; not a write to pre-existing state
	}
	compound := as.Tok != token.ASSIGN
	for i, lhs := range as.Lhs {
		carried := compound
		if !carried && i < len(as.Rhs) {
			if obj := baseObj(w.info, lhs); obj != nil && mentions(w.info, as.Rhs[i], obj) {
				carried = true // x = f(x): the value feeds its own update
			}
		}
		w.write(m, lhs, carried, as.Pos())
	}
	if compound && as.Tok != token.AND_NOT_ASSIGN && isFloat(w.info.TypeOf(as.Lhs[0])) {
		m.ops++
	}
}

// write records one write through lhs and flags package-level targets.
func (w *walker) write(m *metrics, lhs ast.Expr, carried bool, pos token.Pos) {
	obj := baseObj(w.info, lhs)
	if obj == nil {
		return // write through a computed expression; invisible to scoring
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		m.impure = append(m.impure, impurity{pos, "writes package-level variable " + v.Name()})
		return
	}
	m.writes = append(m.writes, write{obj: obj, carried: carried, pos: pos})
}

// call classifies one call expression. The return value reports whether
// the call is a higher-order iteration — a call carrying a func-literal
// argument, the shape of every approx combinator (Perforate, Truncate,
// Memoize, ...) — which the walker treats as one loop level.
func (w *walker) call(m *metrics, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Conversions are arithmetic plumbing, not calls.
	if tv, ok := w.info.Types[fun]; ok && tv.IsType() {
		return false
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			if impureBuiltins[b.Name()] {
				m.impure = append(m.impure, impurity{call.Pos(), "calls builtin " + b.Name()})
			}
			return false
		}
	}
	higher := false
	for _, a := range call.Args {
		if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			higher = true
			break
		}
	}
	obj := calleeObj(w.info, fun)
	fn, isFunc := obj.(*types.Func)
	if higher {
		// The callee drives the literal; it must itself be resolvable
		// and pure (its calls to its own func params are assumed pure,
		// and the literal's body is measured right here by the walk).
		if !isFunc {
			m.impure = append(m.impure, impurity{call.Pos(), "higher-order call through unresolved callee"})
			return true
		}
		if s := w.sc.summarize(fn, w.visiting); !s.pure {
			m.impure = append(m.impure, impurity{call.Pos(), "higher-order call to impure " + fn.Name()})
		}
		m.knobs = append(m.knobs, Knob{Kind: KnobLevel, Name: types.ExprString(fun), Line: w.line(call.Pos())})
		return true
	}
	switch {
	case isFunc:
		s := w.sc.summarize(fn, w.visiting)
		if !s.pure {
			m.impure = append(m.impure, impurity{call.Pos(), "calls " + calleeLabel(fn)})
		}
		m.ops += s.ops
		m.stmts += s.stmts
		if d := w.depth + s.depth; d > m.depth {
			m.depth = d
		}
	case obj != nil && w.pureParams[obj]:
		// A func-typed parameter of the enclosing function: judged at
		// the outer call site where the concrete literal is visible.
	default:
		m.impure = append(m.impure, impurity{call.Pos(), "call through function value"})
	}
	return false
}

func (w *walker) line(pos token.Pos) int {
	return w.sc.loader.Fset.Position(pos).Line
}

// summarize measures fn's declared body, memoized on the Scanner. It is
// safe for concurrent use; visiting is the current recursion chain (call
// cycles resolve optimistically — a cycle of otherwise-pure arithmetic
// stays pure, matching a fixpoint's least solution).
func (s *Scanner) summarize(fn *types.Func, visiting map[*types.Func]bool) summary {
	s.mu.Lock()
	sum, ok := s.summaries[fn]
	s.mu.Unlock()
	if ok {
		return sum
	}
	if visiting[fn] {
		return summary{pure: true}
	}
	visiting[fn] = true
	sum = s.summarizeUncached(fn, visiting)
	delete(visiting, fn)
	s.mu.Lock()
	s.summaries[fn] = sum
	s.mu.Unlock()
	return sum
}

func (s *Scanner) summarizeUncached(fn *types.Func, visiting map[*types.Func]bool) summary {
	pkg := fn.Pkg()
	if pkg == nil {
		return summary{} // error.Error and friends: no package, no body
	}
	path := pkg.Path()
	if !s.inModule(path) {
		switch {
		case pureStdlib[path]:
			return summary{pure: true}
		case randPkgs[path]:
			// Methods run a locally seeded deterministic generator;
			// package-level functions share mutable global state.
			return summary{pure: fn.Signature().Recv() != nil}
		default:
			return summary{}
		}
	}
	if impureModulePkgs[path] {
		return summary{}
	}
	apkg := s.loader.Package(path)
	if apkg == nil {
		return summary{} // not in the loaded closure; assume the worst
	}
	decl := findFuncDecl(apkg, fn)
	if decl == nil || decl.Body == nil {
		return summary{} // interface method or assembly stub
	}
	w := &walker{
		sc:         s,
		pkg:        apkg,
		info:       apkg.Info,
		pureParams: funcTypedParams(apkg.Info, decl.Type),
		visiting:   visiting,
	}
	m := w.measure(decl.Body)
	return summary{pure: len(m.impure) == 0, ops: m.ops, stmts: m.stmts, depth: m.depth}
}

// inModule reports whether path lies inside the scanned module.
func (s *Scanner) inModule(path string) bool {
	mp := s.loader.ModulePath()
	return path == mp || strings.HasPrefix(path, mp+"/")
}

// findFuncDecl locates the declaration of fn in its package by the
// position of its name identifier.
func findFuncDecl(pkg *analysis.Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if f.FileStart > fn.Pos() || fn.Pos() >= f.FileEnd {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd
			}
		}
	}
	return nil
}

// funcTypedParams collects the func-typed parameters declared by ft.
func funcTypedParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// calleeObj resolves a call's function expression to its object.
func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch x := fun.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// calleeLabel renders a callee for impurity messages.
func calleeLabel(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// baseObj unwraps index, selector, star and paren layers and returns the
// base variable a write lands in (pos[i][d] → pos, s.field → s).
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// mentions reports whether the subtree uses obj.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNumeric reports whether t is an integer or float type.
func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
