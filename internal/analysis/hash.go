package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the cheap half of incremental analysis: it derives a
// content hash for every package in a pattern set without type-checking
// anything. A package's hash covers its own source bytes, the hashes of
// its in-module imports (recursively), and a caller-supplied salt (the
// analyzer set and Go toolchain version). Two runs that see the same hash
// for a package are guaranteed to see identical analysis input for it, so
// cached per-package results can be reused byte-for-byte.

// PkgHash is one node of the hashed package graph.
type PkgHash struct {
	// Path is the package's import path.
	Path string
	// Dir is the absolute directory the package lives in.
	Dir string
	// Hash is the hex content hash covering the salt, the package's
	// source files, and the hashes of its in-module imports.
	Hash string
	// Imports are the in-module imports, sorted.
	Imports []string
}

// pkgMeta is the parsed-but-not-type-checked view of one package
// directory: file content hashes and in-module import paths.
type pkgMeta struct {
	path    string
	dir     string
	files   []fileHash
	imports []string // in-module only, sorted
}

type fileHash struct{ name, sum string }

// GraphHashes expands the patterns and returns a PkgHash for every
// matching package, sorted by import path. Hashing reads and parses
// (imports only) each file in the transitive in-module closure once; it
// never type-checks, so a warm cached run costs file I/O plus hashing.
// Standard-library imports contribute through the salt alone — the Go
// version pins their content.
func (l *Loader) GraphHashes(salt string, patterns ...string) ([]*PkgHash, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	meta := map[string]*pkgMeta{}
	hashes := map[string]string{}
	out := make([]*PkgHash, 0, len(dirs))
	for _, dir := range dirs {
		m, err := l.metaForDir(meta, dir)
		if err != nil {
			return nil, err
		}
		h, err := l.hashPkg(meta, hashes, map[string]bool{}, salt, m.path)
		if err != nil {
			return nil, err
		}
		out = append(out, &PkgHash{Path: m.path, Dir: m.dir, Hash: h, Imports: m.imports})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// metaForDir scans one package directory (memoized by import path).
func (l *Loader) metaForDir(meta map[string]*pkgMeta, dir string) (*pkgMeta, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(abs)
	if m, ok := meta[path]; ok {
		return m, nil
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("analysis: hashing %s: %w", path, err)
	}
	m := &pkgMeta{path: path, dir: abs}
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		name := filepath.Join(abs, e.Name())
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: hashing %s: %w", path, err)
		}
		sum := sha256.Sum256(data)
		m.files = append(m.files, fileHash{name: e.Name(), sum: hex.EncodeToString(sum[:])})
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: hashing %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == l.modulePath || strings.HasPrefix(p, l.modulePath+"/") {
				importSet[p] = true
			}
		}
	}
	if len(m.files) == 0 {
		return nil, fmt.Errorf("analysis: hashing %s: no Go files in %s", path, abs)
	}
	sort.Slice(m.files, func(i, j int) bool { return m.files[i].name < m.files[j].name })
	for p := range importSet {
		m.imports = append(m.imports, p)
	}
	sort.Strings(m.imports)
	meta[path] = m
	return m, nil
}

// hashPkg computes (memoized) the content hash of one package, recursing
// into its in-module imports.
func (l *Loader) hashPkg(meta map[string]*pkgMeta, hashes map[string]string, visiting map[string]bool, salt, path string) (string, error) {
	if h, ok := hashes[path]; ok {
		return h, nil
	}
	if visiting[path] {
		return "", fmt.Errorf("analysis: import cycle through %s while hashing", path)
	}
	visiting[path] = true
	defer delete(visiting, path)

	m, err := l.metaForDir(meta, l.dirFor(path))
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "opprox-pkg-hash/v1\x00%s\x00%s\x00", salt, path)
	for _, f := range m.files {
		fmt.Fprintf(h, "file\x00%s\x00%s\x00", f.name, f.sum)
	}
	for _, dep := range m.imports {
		dh, err := l.hashPkg(meta, hashes, visiting, salt, dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep\x00%s\x00%s\x00", dep, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	hashes[path] = sum
	return sum, nil
}

// vetCacheEpoch invalidates every vet cache entry when bumped. The salt
// hashes the analyzer registry's names and docs — and, when the analyzed
// module is opprox itself, the internal/analysis source tree — but an
// analyzer behavior change that alters neither must bump this constant.
const vetCacheEpoch = "opprox-vet-cache/v1"

// CacheSalt derives the component of a cache key shared by every package
// in one run: the epoch, the Go toolchain version, the analyzer
// identities, and — when the module under analysis contains the analyzer
// implementation (the self-hosting case) — the content hash of the
// implementation packages themselves, so editing an analyzer invalidates
// the cache without a manual epoch bump.
func (l *Loader) CacheSalt(epoch string, analyzers []*Analyzer, implPkgs ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", epoch, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer\x00%s\x00%s\x00%s\x00", a.Name, a.Doc, a.Severity)
	}
	for _, pkg := range implPkgs {
		roots, err := l.GraphHashes("", pkg)
		if err != nil {
			continue // not self-hosting: the epoch + go version cover it
		}
		for _, r := range roots {
			fmt.Fprintf(h, "impl\x00%s\x00%s\x00", r.Path, r.Hash)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
