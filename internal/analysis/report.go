package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// ReportSchemaVersion is the current report layout. Version 1 (PR 2, no
// schema_version or go_version fields) decodes compatibly: the fields are
// additive, and Report.Schema maps the zero value back to 1.
const ReportSchemaVersion = 2

// Report is the machine-readable result of one opprox-vet run.
type Report struct {
	// SchemaVersion identifies the report layout; 0 means a version-1
	// report written before the field existed (use Schema, not this
	// field, when deciding compatibility).
	SchemaVersion int `json:"schema_version,omitempty"`
	// GoVersion is the toolchain that type-checked the packages. Analyzer
	// output can legitimately differ across Go releases, so the cache key
	// and report both carry it.
	GoVersion string `json:"go_version,omitempty"`
	// Patterns are the package patterns the run expanded.
	Patterns []string `json:"patterns"`
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Analyzers names the analyzers that ran, sorted.
	Analyzers []string `json:"analyzers"`
	// Diagnostics lists every finding, suppressed ones included.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts the findings silenced by ignore directives.
	Suppressed int `json:"suppressed"`
	// BySeverity counts unsuppressed findings per severity name.
	BySeverity map[string]int `json:"by_severity,omitempty"`
}

// NewReport assembles a report from a finished run.
func NewReport(patterns []string, pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) Report {
	return newReport(patterns, len(pkgs), analyzers, diags)
}

// newReport is NewReport with the package count already flattened, for
// the cached runner (which may never materialize *Package values).
func newReport(patterns []string, packages int, analyzers []*Analyzer, diags []Diagnostic) Report {
	r := Report{
		SchemaVersion: ReportSchemaVersion,
		GoVersion:     runtime.Version(),
		Patterns:      patterns,
		Packages:      packages,
		Analyzers:     make([]string, 0, len(analyzers)),
		Diagnostics:   diags,
	}
	if r.Diagnostics == nil {
		r.Diagnostics = []Diagnostic{}
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	for _, d := range diags {
		if d.Suppressed {
			r.Suppressed++
			continue
		}
		if r.BySeverity == nil {
			r.BySeverity = map[string]int{}
		}
		r.BySeverity[d.Severity.String()]++
	}
	return r
}

// Schema returns the effective schema version of a decoded report: the
// recorded version, or 1 for reports written before the field existed.
func (r Report) Schema() int {
	if r.SchemaVersion == 0 {
		return 1
	}
	return r.SchemaVersion
}

// WriteJSON writes the indented JSON form of the report.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Unsuppressed returns the diagnostics at or above the severity threshold
// that no ignore directive covers — the findings that fail the gate.
func Unsuppressed(diags []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed && d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// WriteText prints the unsuppressed findings at or above min, one per
// line, followed by a one-line summary. It returns the number of findings
// printed.
func WriteText(w io.Writer, diags []Diagnostic, min Severity) int {
	failing := Unsuppressed(diags, min)
	for _, d := range failing {
		fmt.Fprintln(w, d)
	}
	return len(failing)
}
