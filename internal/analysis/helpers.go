package analysis

import (
	"go/ast"
	"go/types"
)

// pkgNameOf returns the imported package a selector's qualifier refers
// to, or nil when the qualifier is not a package name (e.g. a variable).
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// pkgCall reports whether call invokes a package-level function, and if
// so returns the package path and function name.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	pkg := pkgNameOf(info, sel)
	if pkg == nil {
		return "", "", false
	}
	return pkg.Path(), sel.Sel.Name, true
}

// isMapRange reports whether rs ranges over a value of map type.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// objOf resolves an expression to the variable object it names, or nil.
func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredOutside reports whether obj's declaration lies outside node's
// source range — i.e. the object outlives the loop body it is used in.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// mentions reports whether the subtree rooted at n uses obj.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// callsInto reports whether the subtree rooted at n calls a package-level
// function of pkgPath (optionally restricted to the named functions).
func callsInto(info *types.Info, n ast.Node, pkgPath string, names ...string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgCall(info, call)
		if !ok || path != pkgPath {
			return true
		}
		if len(names) == 0 {
			found = true
			return false
		}
		for _, want := range names {
			if name == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stmtLists yields every statement list in the file (block bodies and
// switch/select clause bodies), unwrapping labeled statements so a
// labeled range statement is still seen with its trailing siblings.
func stmtLists(f *ast.File, visit func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			visit(unlabel(b.List))
		case *ast.CaseClause:
			visit(unlabel(b.Body))
		case *ast.CommClause:
			visit(unlabel(b.Body))
		}
		return true
	})
}

// unlabel replaces labeled statements with their wrapped statement so
// callers can type-switch on the concrete statement kind.
func unlabel(list []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(list))
	for i, s := range list {
		for {
			ls, ok := s.(*ast.LabeledStmt)
			if !ok {
				break
			}
			s = ls.Stmt
		}
		out[i] = s
	}
	return out
}
