package analysis

import (
	"go/ast"
	"strings"
)

// Walltime flags wall-clock reads (time.Now, time.Since, time.Until) in
// the modeling path — internal/core, internal/ml and internal/apps.
// Those packages compute results that must be byte-identical across runs
// and across serial/parallel execution, so wall time may only enter the
// system through the observability layer (internal/obs, e.g. obs.Timer),
// which is forbidden from feeding back into results. Packages outside
// the restricted set are not analyzed.
var Walltime = &Analyzer{
	Name:     "walltime",
	Doc:      "time.Now/time.Since/time.Until in internal/core, internal/ml or internal/apps; route wall time through internal/obs (obs.Timer)",
	Severity: Error,
	Run:      runWalltime,
}

func init() { Register(Walltime) }

// walltimeRestricted are the import-path fragments naming the packages
// whose results must not observe wall time.
var walltimeRestricted = []string{
	"/internal/core", "/internal/ml", "/internal/apps",
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pass *Pass) {
	restricted := false
	for _, frag := range walltimeRestricted {
		if strings.Contains(pass.Pkg.Path(), frag) {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgCall(pass.Info, call)
			if ok && path == "time" && wallClockFuncs[name] {
				pass.Reportf(call.Pos(), "time.%s in %s reads the wall clock in the modeling path; route timing through internal/obs (obs.Timer)", name, pass.Pkg.Path())
			}
			return true
		})
	}
}
