package analysis

import (
	"path"
	"strings"
)

// MatchPackage reports whether an import path matches one -pkg pattern:
//
//   - "dir/..." matches the package at dir and everything beneath it;
//     the stem may itself be any of the forms below.
//   - A pattern with glob metacharacters matches path.Match against the
//     full import path.
//   - Anything else matches the full import path exactly, or as a
//     trailing run of path segments ("pso" and "apps/pso" both match
//     opprox/internal/apps/pso).
func MatchPackage(pattern, importPath string) bool {
	if stem, ok := strings.CutSuffix(pattern, "/..."); ok {
		if MatchPackage(stem, importPath) {
			return true
		}
		for p := importPath; ; {
			i := strings.LastIndex(p, "/")
			if i < 0 {
				return false
			}
			p = p[:i]
			if MatchPackage(stem, p) {
				return true
			}
		}
	}
	if strings.ContainsAny(pattern, "*?[") {
		ok, err := path.Match(pattern, importPath)
		return err == nil && ok
	}
	return importPath == pattern || strings.HasSuffix(importPath, "/"+pattern)
}

// MatchAnyPackage reports whether the import path matches any pattern in
// the comma-separated list. An empty list matches everything.
func MatchAnyPackage(patterns, importPath string) bool {
	if patterns == "" {
		return true
	}
	for _, pat := range strings.Split(patterns, ",") {
		if pat = strings.TrimSpace(pat); pat != "" && MatchPackage(pat, importPath) {
			return true
		}
	}
	return false
}
