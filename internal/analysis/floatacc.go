package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatacc flags floating-point reduction over an unordered source: a
// compound assignment (+=, -=, *=, /=) or x = x op e that accumulates
// into a float variable declared outside a range-over-map loop. Float
// addition is not associative, so the randomized iteration order changes
// the low bits of the sum — enough to break OPPROX's byte-identical
// model-fit guarantee. Iterate sorted keys (or accumulate per-key and
// reduce in sorted order) instead.
var Floatacc = &Analyzer{
	Name:     "floatacc",
	Doc:      "float accumulation inside range-over-map; iteration order changes the result — reduce over sorted keys",
	Severity: Warning,
	Run:      runFloatacc,
}

func init() { Register(Floatacc) }

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

var binaryOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
}

func runFloatacc(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.Info, rs) {
				return true
			}
			checkFloatAcc(pass, rs)
			return true
		})
	}
}

func checkFloatAcc(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		target := objOf(pass.Info, as.Lhs[0])
		if target == nil || !declaredOutside(target, rs) || !isFloat(target.Type()) {
			return true
		}
		accumulates := compoundOps[as.Tok]
		if !accumulates && as.Tok == token.ASSIGN {
			// x = x op e (or x = e op x).
			if be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && binaryOps[be.Op] {
				accumulates = objOf(pass.Info, be.X) == target || objOf(pass.Info, be.Y) == target
			}
		}
		if accumulates {
			pass.Reportf(as.Pos(), "float accumulation into %q inside range over map: iteration order changes the result; reduce over sorted keys", target.Name())
		}
		return true
	})
}

// isFloat reports whether t is (or is named with underlying) float32 or
// float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
