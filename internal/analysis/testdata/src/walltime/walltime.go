// Package walltime is the seeded fixture for the walltime analyzer. The
// golden test loads it under an import path inside opprox/internal/core,
// where wall-clock reads are forbidden.
package walltime

import "time"

// Stamp reads the wall clock twice in the modeling path.
func Stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Fixed handles durations without reading the clock — not flagged.
func Fixed() string {
	return (2 * time.Second).String()
}
