// Package suppress exercises every form of the //opprox:vet-ignore
// directive against deliberate globalrand findings.
package suppress

import "math/rand"

// SameLine is silenced by a directive on the flagged line.
func SameLine() int { return rand.Int() } //opprox:vet-ignore globalrand

// LineAbove is silenced by a directive on the line above.
func LineAbove() int {
	//opprox:vet-ignore globalrand
	return rand.Int()
}

// ListDirective names several analyzers; globalrand is among them.
func ListDirective() int {
	//opprox:vet-ignore maporder, globalrand
	return rand.Int()
}

// AllDirective silences every analyzer on the line.
func AllDirective() int {
	return rand.Int() //opprox:vet-ignore all
}

// WrongName suppresses a different analyzer, so the finding stands.
func WrongName() int {
	//opprox:vet-ignore walltime
	return rand.Int()
}
