// Package suppressml exercises the ignore directive against findings on
// continuation lines of multi-line statements: before origin matching, a
// directive above a multi-line struct literal failed to silence a finding
// inside it — the finding's line is the field's line, not the statement's.
package suppressml

import "math/rand"

type cfg struct {
	jitter float64
	scale  float64
	bias   float64
}

// AboveLiteral's directive sits above the statement; the finding sits two
// lines deeper, on the scale field. Origin matching maps the finding back
// to the statement's first line, so the directive covers it.
func AboveLiteral() cfg {
	//opprox:vet-ignore globalrand
	c := cfg{
		jitter: 0,
		scale:  rand.Float64(),
		bias:   1,
	}
	return c
}

// OnLiteral's directive shares the statement's first line.
func OnLiteral() cfg {
	c := cfg{ //opprox:vet-ignore globalrand
		jitter: 0,
		bias:   rand.Float64(),
	}
	return c
}

// WrappedArgs covers the other multi-line shape: a call whose argument
// list wraps, with the finding on a continuation line.
func WrappedArgs() float64 {
	//opprox:vet-ignore globalrand
	return max(
		0.5,
		rand.Float64(),
	)
}

// InsideLiteral's directive floats mid-literal, two lines above the
// finding and away from the statement's first line: origin matching is
// deliberately tight, so the finding stands.
func InsideLiteral() cfg {
	c := cfg{
		//opprox:vet-ignore globalrand
		jitter: 0,
		scale:  0,
		bias:   rand.Float64(),
	}
	return c
}
