// Package globalrand is the seeded fixture for the globalrand analyzer.
package globalrand

import (
	"math/rand"
	"time"
)

// Roll draws from the process-global source.
func Roll() int { return rand.Intn(6) }

// Shuffle mutates through the process-global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Seeded is the sanctioned form: an explicit source with a run-derived
// seed.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// WallSeeded derives the seed from the wall clock, so the run cannot be
// replayed.
func WallSeeded() int {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return rng.Intn(6)
}
