// Package floatacc is the seeded fixture for the floatacc analyzer.
package floatacc

// Sum accumulates a float in map iteration order.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// SumExpr uses the x = x + v spelling of the same reduction.
func SumExpr(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v
	}
	return total
}

// Count reduces an integer; order-independent, not flagged.
func Count(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// PerKey accumulates into a variable scoped to one iteration; the inner
// reduction runs over an ordered slice. Not flagged.
func PerKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// Slice reduces over an ordered source; not flagged.
func Slice(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s
}
