// Package mutexcopy is the seeded fixture for the mutexcopy analyzer.
package mutexcopy

import (
	"sync"
	"sync/atomic"
)

// Guarded embeds a mutex by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Counter embeds an atomic value.
type Counter struct {
	v atomic.Int64
}

// LockByValue receives a mutex by value: the callee locks a copy.
func LockByValue(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// ByPointer is the correct form.
func ByPointer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// StructByValue copies the lock embedded in Guarded.
func StructByValue(g Guarded) int { return g.n }

// Value copies the receiver, and with it the atomic counter.
func (c Counter) Value() int64 { return c.v.Load() }

// Inc uses a pointer receiver — the correct form.
func (c *Counter) Inc() { c.v.Add(1) }

// NewOnce returns a sync.Once by value; every caller gets an independent
// copy.
func NewOnce() sync.Once {
	var once sync.Once
	return once
}
