// Package maporder is the seeded fixture for the maporder analyzer. Sigs
// reconstructs the PR 1 multi-class model-fitting bug: class signatures
// collected from a map in iteration order and consumed unsorted.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// Sigs is the PR 1 bug shape: the caller receives the signatures in a
// different order every run.
func Sigs(classes map[string][]int) []string {
	var sigs []string
	for sig := range classes {
		sigs = append(sigs, sig)
	}
	return sigs
}

// SortedSigs is the fixed form — collect then sort is exempt.
func SortedSigs(classes map[string][]int) []string {
	sigs := make([]string, 0, len(classes))
	for sig := range classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs
}

// Render prints entries in iteration order.
func Render(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Digest feeds a writer (a hash, in the motivating case) in iteration
// order.
func Digest(m map[string]int, w io.Writer) {
	for k := range m {
		w.Write([]byte(k))
	}
}

// Local appends to a slice scoped to one iteration; order cannot leak.
func Local(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		n += len(evens)
	}
	return n
}

// Ignored carries a suppression directive; the finding is recorded but
// marked suppressed.
func Ignored(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //opprox:vet-ignore maporder
	}
	return out
}
