package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"opprox/internal/analysis"
	"opprox/internal/analysis/discover"
)

// writeTempModule lays out a three-package module for cache tests:
// b imports a (so mutating a must re-analyze both), c is independent.
// Package a carries a deliberate floatacc finding; everything is
// dependency-free so loading never touches the standard library.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/cachemod\n\ngo 1.21\n",
		"a/a.go": `package a

// Sum carries a floatacc finding: float reduction over map order.
func Sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// Kernel is a pure float loop the scanner discovers.
func Kernel(xs []float64) float64 {
	acc := 0.0
	for i := 0; i < len(xs); i++ {
		acc += xs[i] * xs[i]
	}
	return acc
}
`,
		"b/b.go": `package b

import "example.com/cachemod/a"

// Mean leans on a.Sum; its analysis depends on package a's sources.
func Mean(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	return a.Sum(m) / float64(len(m))
}
`,
		"c/c.go": `package c

// Scale is independent of a and b.
func Scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}
`,
	}
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// vetJSON runs the cached vet over the temp module with a fresh loader
// (a loader memoizes type-checked packages, so reuse would hide staleness)
// and returns the report bytes and stats.
func vetJSON(t *testing.T, dir string, cache *analysis.Cache) ([]byte, analysis.CacheStats) {
	t.Helper()
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	rep, stats, err := l.RunCached(cache, nil, []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.Bytes(), stats
}

// TestVetCacheColdWarmMutate is the cache-correctness gate: a cold run
// analyzes everything, a warm run analyzes nothing and reproduces the
// report byte for byte, and mutating one package re-analyzes exactly that
// package and its dependents.
func TestVetCacheColdWarmMutate(t *testing.T) {
	dir := writeTempModule(t)
	cache := &analysis.Cache{Dir: filepath.Join(dir, ".opprox-cache")}

	cold, stats := vetJSON(t, dir, cache)
	if stats.Packages != 3 || stats.Hits != 0 || len(stats.Analyzed) != 3 {
		t.Fatalf("cold run: %+v, want 3 packages all analyzed", stats)
	}
	if !strings.Contains(string(cold), `"analyzer": "floatacc"`) {
		t.Fatalf("cold report lost the seeded floatacc finding:\n%s", cold)
	}

	warm, stats := vetJSON(t, dir, cache)
	if stats.Hits != 3 || len(stats.Analyzed) != 0 {
		t.Fatalf("warm run: %+v, want 3 hits and nothing analyzed", stats)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}

	// Mutate package a: append a second finding-free function. a and its
	// dependent b must re-analyze; c must hit.
	aFile := filepath.Join(dir, "a", "a.go")
	src, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	src = append(src, []byte("\nfunc Twice(x float64) float64 { return 2 * x }\n")...)
	if err := os.WriteFile(aFile, src, 0o644); err != nil {
		t.Fatal(err)
	}

	mutated, stats := vetJSON(t, dir, cache)
	want := []string{"example.com/cachemod/a", "example.com/cachemod/b"}
	if stats.Hits != 1 || !reflect.DeepEqual(stats.Analyzed, want) {
		t.Fatalf("post-mutation run: %+v, want exactly a and b re-analyzed", stats)
	}
	if !strings.Contains(string(mutated), `"analyzer": "floatacc"`) {
		t.Fatalf("mutated report lost the floatacc finding:\n%s", mutated)
	}

	// The mutated tree's cached report must equal a fresh uncached run.
	uncached, _ := vetJSON(t, dir, nil)
	if !bytes.Equal(mutated, uncached) {
		t.Fatalf("cached report after mutation differs from uncached:\n--- cached ---\n%s--- uncached ---\n%s", mutated, uncached)
	}
}

// TestScanCacheColdWarmMutate proves the same coherence invariant for
// opprox-scan's candidate cache.
func TestScanCacheColdWarmMutate(t *testing.T) {
	dir := writeTempModule(t)
	cache := &analysis.Cache{Dir: filepath.Join(dir, ".opprox-cache")}

	scanJSON := func(c *analysis.Cache) ([]byte, analysis.CacheStats) {
		l, err := analysis.NewLoader(dir)
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		rep, stats, err := discover.RunCached(l, c, discover.Options{}, []string{"./..."})
		if err != nil {
			t.Fatalf("discover.RunCached: %v", err)
		}
		var b bytes.Buffer
		if err := rep.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.Bytes(), stats
	}

	cold, stats := scanJSON(cache)
	if stats.Packages != 3 || stats.Hits != 0 {
		t.Fatalf("cold scan: %+v", stats)
	}
	if !strings.Contains(string(cold), `"a_kernel_l15"`) {
		t.Fatalf("cold scan missed the seeded kernel candidate:\n%s", cold)
	}

	warm, stats := scanJSON(cache)
	if stats.Hits != 3 || len(stats.Analyzed) != 0 {
		t.Fatalf("warm scan: %+v, want 3 hits", stats)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm scan differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}

	// Grow c by one discoverable loop; only c re-scans.
	cFile := filepath.Join(dir, "c", "c.go")
	src, err := os.ReadFile(cFile)
	if err != nil {
		t.Fatal(err)
	}
	src = append(src, []byte("\nfunc Dot(a, b []float64) float64 {\n\ts := 0.0\n\tfor i := range a {\n\t\ts += a[i] * b[i]\n\t}\n\treturn s\n}\n")...)
	if err := os.WriteFile(cFile, src, 0o644); err != nil {
		t.Fatal(err)
	}
	mutated, stats := scanJSON(cache)
	if stats.Hits != 2 || !reflect.DeepEqual(stats.Analyzed, []string{"example.com/cachemod/c"}) {
		t.Fatalf("post-mutation scan: %+v, want only c re-scanned", stats)
	}
	if !strings.Contains(string(mutated), `"c_dot_l12"`) {
		t.Fatalf("mutated scan missed the new candidate:\n%s", mutated)
	}
}

// TestWarmVetSpeedup is the acceptance benchmark: over a real slice of
// the repository, a warm cached run must be at least 5x faster than the
// cold run that populated the cache — the warm path only hashes files and
// never type-checks — while reproducing the report byte for byte.
func TestWarmVetSpeedup(t *testing.T) {
	cacheDir := t.TempDir()
	cache := &analysis.Cache{Dir: cacheDir}
	patterns := []string{"./internal/approx/...", "./internal/apps/...", "./internal/launch/..."}

	run := func(c *analysis.Cache) ([]byte, time.Duration) {
		l, err := analysis.NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		start := time.Now()
		rep, _, err := l.RunCached(c, nil, patterns, nil)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("RunCached: %v", err)
		}
		var b bytes.Buffer
		if err := rep.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.Bytes(), elapsed
	}

	cold, coldTime := run(cache)
	warm, warmTime := run(cache)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm report differs from cold")
	}
	if coldTime < 5*warmTime {
		t.Errorf("warm run not >=5x faster: cold=%v warm=%v", coldTime, warmTime)
	}
}

// TestPkgFilter covers the -pkg flag's matcher and its composition with
// the cached runner.
func TestPkgFilter(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"pso", "opprox/internal/apps/pso", true},
		{"apps/pso", "opprox/internal/apps/pso", true},
		{"pso", "opprox/internal/apps/tracker", false},
		{"internal/apps/...", "opprox/internal/apps/pso", true},
		{"internal/apps/...", "opprox/internal/apps", true},
		{"internal/apps/...", "opprox/internal/approx", false},
		{"opprox/internal/*", "opprox/internal/approx", true},
		{"opprox/internal/*", "opprox/internal/apps/pso", false},
		{"opprox/internal/apps/pso", "opprox/internal/apps/pso", true},
		{"app", "opprox/internal/apps", false},
	}
	for _, tc := range cases {
		if got := analysis.MatchPackage(tc.pattern, tc.path); got != tc.want {
			t.Errorf("MatchPackage(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
	if !analysis.MatchAnyPackage("", "anything/at/all") {
		t.Error("empty -pkg list must match everything")
	}
	if !analysis.MatchAnyPackage("tracker, pso", "opprox/internal/apps/pso") {
		t.Error("comma-separated -pkg list should match pso")
	}

	l := loader(t)
	only := func(path string) bool { return analysis.MatchAnyPackage("pso", path) }
	rep, stats, err := l.RunCached(nil, nil, []string{"./internal/apps/..."}, only)
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	if rep.Packages != 1 || stats.Packages != 1 {
		t.Errorf("-pkg pso kept %d packages, want 1", rep.Packages)
	}
	for _, d := range rep.Diagnostics {
		if !strings.Contains(d.File, "pso") {
			t.Errorf("filtered report contains foreign diagnostic %s", d)
		}
	}
}

// TestRunCachedMatchesUncached pins the coherence invariant at the API
// level: with no cache at all, RunCached must equal Load+Run+NewReport.
func TestRunCachedMatchesUncached(t *testing.T) {
	l := loader(t)
	patterns := []string{"./internal/apps/..."}
	rep, _, err := l.RunCached(nil, nil, patterns, nil)
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	plain := analysis.NewReport(patterns, pkgs, analysis.All(), l.Run(pkgs, nil))
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("cached and plain runners disagree:\n--- cached ---\n%s--- plain ---\n%s", a.String(), b.String())
	}
}

// TestReportDecodeCompat decodes a PR 2-era report (written before
// schema_version and go_version existed) and asserts the additive schema
// reads it intact.
func TestReportDecodeCompat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "report_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep analysis.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding v1 report: %v", err)
	}
	if rep.Schema() != 1 {
		t.Errorf("Schema() = %d for a pre-versioning report, want 1", rep.Schema())
	}
	if rep.GoVersion != "" {
		t.Errorf("v1 report grew a go_version: %q", rep.GoVersion)
	}
	if rep.Packages != 12 || len(rep.Diagnostics) != 2 || rep.Suppressed != 1 {
		t.Errorf("v1 fields decoded wrong: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.Analyzer != "globalrand" || d.Severity != analysis.Error || d.Line != 42 {
		t.Errorf("v1 diagnostic decoded wrong: %+v", d)
	}
	if !rep.Diagnostics[1].Suppressed {
		t.Error("v1 suppressed flag lost in decode")
	}
	// A freshly written report must carry the current schema version.
	var fresh analysis.Report
	var buf bytes.Buffer
	if err := analysis.NewReport(nil, nil, nil, nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Schema() != analysis.ReportSchemaVersion {
		t.Errorf("fresh report Schema() = %d, want %d", fresh.Schema(), analysis.ReportSchemaVersion)
	}
}

// TestSuppressionMultiLine pins origin matching: a directive above (or
// on) the first line of a multi-line statement silences findings on its
// continuation lines, while a directive floating mid-literal does not.
func TestSuppressionMultiLine(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppressml"), "")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := l.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Lookup("globalrand")})
	got := render(diags)

	goldenPath := filepath.Join("testdata", "suppressml.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	} else {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
		}
	}

	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4:\n%s", len(diags), got)
	}
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed != 3 {
		t.Errorf("got %d suppressed, want 3 (AboveLiteral, OnLiteral, WrappedArgs):\n%s", suppressed, got)
	}
	bad := analysis.Unsuppressed(diags, analysis.Info)
	if len(bad) != 1 || bad[0].Line != 55 {
		t.Errorf("want exactly the InsideLiteral finding (line 55) unsuppressed, got:\n%s", render(bad))
	}
}
