package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or the override the caller gave).
	Path string
	// Dir is the absolute directory the package was parsed from.
	Dir string
	// Files are the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
}

// Loader parses and type-checks packages of one module. Imports inside
// the module resolve by parsing the corresponding directory; standard
// library imports delegate to the stdlib source importer. A Loader
// memoizes every package it checks, so loading the whole module
// type-checks each dependency once. Not safe for concurrent use.
type Loader struct {
	// Fset is the file set shared by every package this loader touches.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir. It
// reads the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: path,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleDir returns the absolute module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Package returns the already-loaded package with the given import path,
// or nil. Loading any package memoizes its full in-module import closure
// (ASTs and type info included), so cross-package passes — the discovery
// scanner's purity summaries — can reach a dependency's function bodies
// without re-parsing. It never triggers a load itself, so it is safe to
// call concurrently once loading is done.
func (l *Loader) Package(path string) *Package { return l.pkgs[path] }

// RelFile maps an absolute filename to its module-relative slash form —
// the path diagnostics and reports use.
func (l *Loader) RelFile(name string) string { return l.relFile(name) }

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Load expands the given package patterns and returns the matching
// packages, type-checked and sorted by import path. Patterns are
// module-relative directories ("./internal/core", "internal/core"), the
// recursive form "dir/..." or "./...", or import paths inside the module
// ("opprox/internal/core"). Directories named testdata, hidden
// directories, and directories with no non-test .go files are skipped by
// recursive patterns.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, "")
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand resolves patterns to a deduplicated, sorted list of absolute
// package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		dir := l.dirFor(pat)
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: no such directory %s", pat, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirFor maps a pattern (module-relative directory or import path inside
// the module) to an absolute directory.
func (l *Loader) dirFor(pat string) string {
	if pat == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(pat, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.moduleDir, filepath.FromSlash(pat))
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a buildable non-test Go file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir parses and type-checks the single package in dir. asPath, when
// non-empty, overrides the computed import path — test fixtures use it to
// pose as restricted packages (e.g. a path under opprox/internal/core for
// the walltime analyzer). It returns (nil, nil) when dir has no non-test
// Go files.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := asPath
	if path == "" {
		path = l.pathFor(abs)
	}
	return l.check(path, abs)
}

// pathFor derives an import path for an absolute directory inside the
// module; directories outside it fall back to a filesystem-rooted path.
func (l *Loader) pathFor(abs string) string {
	if abs == l.moduleDir {
		return l.modulePath
	}
	if rel, err := filepath.Rel(l.moduleDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// check parses and type-checks the package in dir, memoized by path.
func (l *Loader) check(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var fileNames []string
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		fileNames = append(fileNames, filepath.Join(dir, e.Name()))
	}
	if len(fileNames) == 0 {
		return nil, nil
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer (unqualified imports resolve relative
// to the module root).
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-local import paths are
// parsed and checked from the module tree; everything else (the standard
// library — the module has no external dependencies) goes to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.check(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
