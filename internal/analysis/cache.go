package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Cache is a content-addressed on-disk store for per-package analysis
// results: <dir>/<component>/<key>.json. Keys are package-graph content
// hashes (GraphHashes), so invalidation is implicit — any change to a
// package, one of its in-module dependencies, the analyzer set, or the
// Go toolchain produces a new key and the stale entry is simply never
// read again. Entries are written atomically (temp file + rename), so a
// crashed or concurrent run can never leave a torn entry behind.
type Cache struct {
	// Dir is the cache root, conventionally ".opprox-cache" at the
	// module root.
	Dir string
}

// Get decodes the entry for key into v, reporting whether a valid entry
// existed. Any unreadable or undecodable entry is treated as a miss.
func (c *Cache) Get(component, key string, v any) bool {
	data, err := os.ReadFile(c.entryPath(component, key))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// Put stores v under key, atomically.
func (c *Cache) Put(component, key string, v any) error {
	dir := filepath.Join(c.Dir, component)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.entryPath(component, key))
}

func (c *Cache) entryPath(component, key string) string {
	return filepath.Join(c.Dir, component, key+".json")
}

// CacheStats reports what a cached run did: how many packages were served
// from the cache and which had to be type-checked and re-analyzed.
type CacheStats struct {
	// Packages is the number of packages the pattern set matched.
	Packages int
	// Hits is the number served from the cache.
	Hits int
	// Analyzed lists the import paths type-checked and analyzed this
	// run, sorted.
	Analyzed []string
}

// vetEntry is one cached package's diagnostics.
type vetEntry struct {
	Package     string       `json:"package"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// RunCached is the incremental form of Load + Run + NewReport: it hashes
// the package graph, reuses cached per-package diagnostics where the hash
// matches, and type-checks only the rest. A nil analyzer slice means
// All(); a nil cache degrades to a plain uncached run; a non-nil `only`
// keeps just the matched packages (the -pkg flag) and composes with the
// cache — filtering happens after hashing, so kept and dropped packages
// share cache entries with unfiltered runs. The returned report is
// byte-identical to an uncached run over the same tree — diagnostics are
// produced per package either way, and the merge order is the canonical
// sort — which is the cache-coherence invariant the tier-1 gate relies on
// (DESIGN.md §13).
func (l *Loader) RunCached(c *Cache, analyzers []*Analyzer, patterns []string, only func(importPath string) bool) (Report, CacheStats, error) {
	if analyzers == nil {
		analyzers = All()
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	salt := l.CacheSalt(vetCacheEpoch, analyzers, "internal/analysis")
	roots, err := l.GraphHashes(salt, patterns...)
	if err != nil {
		return Report{}, CacheStats{}, err
	}
	if only != nil {
		kept := roots[:0]
		for _, ph := range roots {
			if only(ph.Path) {
				kept = append(kept, ph)
			}
		}
		roots = kept
	}
	var diags []Diagnostic
	stats := CacheStats{Packages: len(roots)}
	for _, ph := range roots {
		var e vetEntry
		if c != nil && c.Get("vet", ph.Hash, &e) && e.Package == ph.Path {
			stats.Hits++
			diags = append(diags, e.Diagnostics...)
			continue
		}
		pkg, err := l.LoadDir(ph.Dir, "")
		if err != nil {
			return Report{}, stats, err
		}
		if pkg == nil {
			return Report{}, stats, fmt.Errorf("analysis: no Go files in %s", ph.Path)
		}
		pd := l.Run([]*Package{pkg}, analyzers)
		stats.Analyzed = append(stats.Analyzed, ph.Path)
		diags = append(diags, pd...)
		if c != nil {
			if err := c.Put("vet", ph.Hash, vetEntry{Package: ph.Path, Diagnostics: pd}); err != nil {
				return Report{}, stats, fmt.Errorf("analysis: writing cache entry for %s: %w", ph.Path, err)
			}
		}
	}
	sort.Strings(stats.Analyzed)
	SortDiagnostics(diags)
	return newReport(patterns, len(roots), analyzers, diags), stats, nil
}
