package shard

import (
	"fmt"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("a", ""); err == nil {
		t.Fatal("empty replica name accepted")
	}
	tbl, err := New("b", "a", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d after dedupe, want 2", tbl.Len())
	}
	got := tbl.Replicas()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Replicas = %v, want [a b] sorted", got)
	}
	if _, ok := (&Table{}).Owner("k"); ok {
		t.Fatal("empty table claimed an owner")
	}
}

// TestOwnerGolden pins the routing function itself: these assignments
// may never change between builds, or a rolling fleet upgrade would
// split ownership of a model between replicas running old and new
// binaries. If this test fails, the hash changed — that is a breaking
// wire-compatibility event, not a test to update casually.
func TestOwnerGolden(t *testing.T) {
	tbl, err := New("alpha", "beta", "gamma")
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"pso.json":     "beta",
		"lulesh.json":  "gamma",
		"comd.json":    "alpha",
		"vidpipe.json": "alpha",
		"tracker.json": "alpha",
		"":             "alpha",
	}
	for key, want := range golden {
		owner, ok := tbl.Owner(key)
		if !ok {
			t.Fatalf("Owner(%q) not ok", key)
		}
		if owner != want {
			t.Errorf("Owner(%q) = %q, want golden %q", key, owner, want)
		}
	}
}

func replicaSet(n int) []string {
	rs := make([]string, n)
	for i := range rs {
		rs[i] = fmt.Sprintf("replica-%d", i)
	}
	return rs
}

// TestBalance bounds the keyspace skew for every fleet size the smoke
// and conformance setups use: with 10k keys no replica may hold less
// than half or more than twice its fair share.
func TestBalance(t *testing.T) {
	const keys = 10000
	for n := 1; n <= 8; n++ {
		tbl, err := New(replicaSet(n)...)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			owner, ok := tbl.Owner(fmt.Sprintf("model-%d.json", i))
			if !ok {
				t.Fatalf("n=%d: no owner", n)
			}
			counts[owner]++
		}
		fair := float64(keys) / float64(n)
		for _, r := range tbl.Replicas() {
			c := counts[r]
			if float64(c) < fair/2 || float64(c) > fair*2 {
				t.Errorf("n=%d: %s owns %d keys, fair share %.0f (counts %v)", n, r, c, fair, counts)
			}
		}
	}
}

// TestMinimalDisruption is rendezvous hashing's defining property: a
// topology change moves only the keys it must. Adding a replica steals
// keys only for itself; removing one reassigns only the keys it owned.
func TestMinimalDisruption(t *testing.T) {
	const keys = 2000
	for n := 1; n <= 7; n++ {
		before, err := New(replicaSet(n)...)
		if err != nil {
			t.Fatal(err)
		}
		added := fmt.Sprintf("replica-%d", n)
		after, err := New(append(replicaSet(n), added)...)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("model-%d.json", i)
			was, _ := before.Owner(key)
			now, _ := after.Owner(key)
			if now != was {
				if now != added {
					t.Fatalf("n=%d key %q moved %s -> %s, not to the added replica", n, key, was, now)
				}
				moved++
			}
		}
		// The added replica should win roughly 1/(n+1) of the keys — and
		// must win some, or the "addition" did nothing.
		if moved == 0 {
			t.Fatalf("n=%d: added replica stole no keys", n)
		}

		// Removal: drop replica-0; every key it did not own stays put.
		removed := "replica-0"
		shrunk, err := New(replicaSet(n + 1)[1:]...)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			continue
		}
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("model-%d.json", i)
			was, _ := after.Owner(key)
			now, ok := shrunk.Owner(key)
			if !ok {
				t.Fatalf("n=%d: shrunk table empty", n)
			}
			if was != removed && now != was {
				t.Fatalf("n=%d key %q moved %s -> %s though %s was removed", n, key, was, now, removed)
			}
		}
	}
}

func TestRankProperties(t *testing.T) {
	tbl, err := New(replicaSet(5)...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		rank := tbl.Rank(key)
		if len(rank) != tbl.Len() {
			t.Fatalf("Rank(%q) has %d entries, want %d", key, len(rank), tbl.Len())
		}
		owner, _ := tbl.Owner(key)
		if rank[0] != owner {
			t.Fatalf("Rank(%q)[0] = %s, Owner = %s", key, rank[0], owner)
		}
		seen := map[string]bool{}
		for _, r := range rank {
			if seen[r] {
				t.Fatalf("Rank(%q) repeats %s", key, r)
			}
			seen[r] = true
		}
		again := tbl.Rank(key)
		for j := range rank {
			if again[j] != rank[j] {
				t.Fatalf("Rank(%q) not deterministic: %v vs %v", key, rank, again)
			}
		}
	}
}

func TestScoreDistinguishesBoundary(t *testing.T) {
	// The zero separator between replica and key means ("ab","c") and
	// ("a","bc") hash different byte streams; a plain concatenation
	// would collide them.
	if score("ab", "c") == score("a", "bc") {
		t.Fatal("replica/key boundary not separated in the hash")
	}
}
