package shard

import (
	"fmt"
	"testing"
)

// BenchmarkOwner is the per-request routing decision: one rendezvous
// scan over a production-sized replica set. Must stay allocation-free —
// it runs on every dispatch in a sharded fleet.
func BenchmarkOwner(b *testing.B) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	tbl, err := New(names...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Owner("pso.json"); !ok {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkRank is the fallback-order computation used on feedback
// forwarding; it allocates its result slice by contract.
func BenchmarkRank(b *testing.B) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	tbl, err := New(names...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := tbl.Rank("0123456789abcdef"); len(r) != 8 {
			b.Fatal("bad rank")
		}
	}
}
