// Package shard assigns keys to replicas by rendezvous (highest-random-
// weight) hashing: every replica scores every key with an independent
// hash, and the key belongs to the replica with the highest score. The
// properties the serving layer leans on:
//
//   - Deterministic. The score function is FNV-1a over fixed bytes — no
//     seeds, no process state — so every replica of a fleet computes the
//     same owner for the same key, across processes, restarts and builds
//     (a golden test pins the routing so it can never change silently).
//   - Minimal disruption. Removing a replica reassigns only the keys it
//     owned (each surviving replica's scores are unchanged, so a key's
//     argmax moves only if its owner vanished); adding a replica steals
//     only the keys it now wins. No ring positions, no token shuffling.
//   - Uniform. FNV-1a scores are well distributed, so keys spread evenly
//     across replicas (a balance test bounds the skew across 1..8
//     replicas).
//
// The table is immutable after New: topology changes build a new table,
// which keeps every lookup lock-free and allocation-free.
package shard

import (
	"fmt"
	"sort"
)

// Table is an immutable rendezvous-hash routing table over a replica
// set. The zero value routes nothing; build with New.
type Table struct {
	replicas []string
}

// New builds a table over the given replica names. Names are deduped and
// sorted; empty names are rejected — a silent empty replica would eat a
// share of the keyspace no server answers for.
func New(replicas ...string) (*Table, error) {
	seen := make(map[string]bool, len(replicas))
	uniq := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r == "" {
			return nil, fmt.Errorf("shard: empty replica name")
		}
		if seen[r] {
			continue
		}
		seen[r] = true
		uniq = append(uniq, r)
	}
	sort.Strings(uniq)
	return &Table{replicas: uniq}, nil
}

// Len reports the number of replicas.
func (t *Table) Len() int { return len(t.replicas) }

// Replicas returns the replica names, sorted. The slice is a copy.
func (t *Table) Replicas() []string {
	return append([]string(nil), t.replicas...)
}

// Owner returns the replica that owns key — the highest-scoring replica,
// ties broken toward the lexicographically smaller name so the choice is
// total. ok is false for an empty table.
func (t *Table) Owner(key string) (owner string, ok bool) {
	if len(t.replicas) == 0 {
		return "", false
	}
	best := t.replicas[0]
	bestScore := score(t.replicas[0], key)
	for _, r := range t.replicas[1:] {
		// Replicas are sorted, so a strict > keeps the smallest name on
		// ties.
		if s := score(r, key); s > bestScore {
			best, bestScore = r, s
		}
	}
	return best, true
}

// Rank returns every replica ordered by descending score for key (the
// owner first), ties broken by name. Callers use the tail as the
// deterministic fallback/fan-out order when the owner cannot answer.
func (t *Table) Rank(key string) []string {
	type scored struct {
		name   string
		weight uint64
	}
	rr := make([]scored, len(t.replicas))
	for i, r := range t.replicas {
		rr[i] = scored{name: r, weight: score(r, key)}
	}
	sort.Slice(rr, func(i, j int) bool {
		if rr[i].weight != rr[j].weight {
			return rr[i].weight > rr[j].weight
		}
		return rr[i].name < rr[j].name
	})
	out := make([]string, len(rr))
	for i, x := range rr {
		out[i] = x.name
	}
	return out
}

// fnv-1a 64-bit parameters (the algorithm is fully specified, which is
// what makes the routing build-stable).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// score is the rendezvous weight of (replica, key): FNV-1a over the
// replica name, a zero separator, and the key. Inlined rather than
// hash/fnv so the routing path performs no allocation.
func score(replica, key string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(replica); i++ {
		h ^= uint64(replica[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}
