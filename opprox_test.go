package opprox_test

import (
	"bytes"
	"errors"
	"testing"

	"opprox"
)

func TestBenchmarksMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, a := range opprox.Benchmarks() {
		if names[a.Name()] {
			t.Fatalf("duplicate benchmark name %q", a.Name())
		}
		names[a.Name()] = true
		if len(a.Blocks()) < 3 {
			t.Fatalf("%s has %d blocks, want >= 3", a.Name(), len(a.Blocks()))
		}
	}
	if len(names) != 5 {
		t.Fatalf("benchmarks = %d, want 5", len(names))
	}
}

func TestSystemRequiresTraining(t *testing.T) {
	sys := opprox.New(opprox.PSO())
	_, _, err := sys.Optimize(opprox.DefaultParams(opprox.PSO()), 10)
	if err == nil {
		t.Fatal("Optimize before Train must error")
	}
	if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training is seconds-long; skipped with -short")
	}
	app := opprox.PSO()
	sys := opprox.New(app)
	opts := opprox.DefaultOptions()
	opts.Phases = 2
	opts.JointSamplesPerPhase = 8
	opts.MaxParamCombos = 3
	opts.Folds = 5
	if err := sys.Train(opts); err != nil {
		t.Fatal(err)
	}
	p := opprox.DefaultParams(app)
	sched, pred, err := sys.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Degradation > 10 {
		t.Fatalf("predicted degradation %.2f exceeds budget", pred.Degradation)
	}
	ev, err := sys.Evaluate(p, sched)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Degradation > 10+1e-9 {
		t.Fatalf("measured degradation %.2f exceeds budget", ev.Degradation)
	}
}

func TestScheduleHelpers(t *testing.T) {
	cfg := opprox.Config{1, 2}
	s := opprox.UniformSchedule(3, cfg)
	if s.Phases != 3 || s.Level(1, 1) != 2 {
		t.Fatalf("UniformSchedule wrong: %s", s)
	}
	if !opprox.AccurateSchedule(2).IsAccurate() {
		t.Fatal("AccurateSchedule not accurate")
	}
	sp := opprox.SinglePhaseSchedule(4, 2, cfg)
	if sp.Level(2, 0) != 1 || sp.Level(0, 0) != 0 {
		t.Fatal("SinglePhaseSchedule wrong")
	}
}

func TestTechniqueNamesExported(t *testing.T) {
	if opprox.Perforation.String() != "loop perforation" {
		t.Fatal("technique re-export broken")
	}
	if opprox.BudgetPolicyROI.String() != "roi" {
		t.Fatal("budget policy re-export broken")
	}
}

func TestFacadeReExports(t *testing.T) {
	if got := opprox.ReducePrecision(1.0/3.0, 5, 5); got == 1.0/3.0 {
		t.Fatal("ReducePrecision re-export inert")
	}
	if opprox.PhaseOf(9, 10, 4) != 3 {
		t.Fatal("PhaseOf re-export wrong")
	}
	ran := 0
	opprox.Perforate(10, 1, func(int) { ran++ })
	if ran != 5 {
		t.Fatalf("Perforate re-export ran %d", ran)
	}
}

func TestSaveLoadThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	app := opprox.PSO()
	sys := opprox.New(app)
	opts := opprox.DefaultOptions()
	opts.Phases = 2
	opts.JointSamplesPerPhase = 6
	opts.MaxParamCombos = 2
	opts.Folds = 5
	if err := sys.Train(opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := opprox.LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := opprox.DefaultParams(app)
	s1, _, err := sys.Models.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := loaded.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("loaded models optimize differently")
	}
}

func TestSensitivityProfileFacade(t *testing.T) {
	app := opprox.PSO()
	runner := opprox.NewRunner(app)
	profiles, err := opprox.SensitivityProfile(runner, opprox.DefaultParams(app), 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(app.Blocks()) {
		t.Fatalf("profiles = %d, want %d", len(profiles), len(app.Blocks()))
	}
}
