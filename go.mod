module opprox

go 1.23
