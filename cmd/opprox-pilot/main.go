// Command opprox-pilot is a self-contained closed-loop demo: it trains a
// small model for the streaming video pipeline (the paper's FFmpeg
// benchmark), starts an opprox-serve instance on it, then replays a
// dispatch+feedback workload with injected input drift — realized QoS
// systematically off the model's predictions, the situation a phase
// model faces when production inputs wander away from the training
// distribution.
//
// The timeline it prints is the whole lifecycle story: dispatches are
// served with a deterministic dispatch ID and model version; drifted
// feedback flips the model healthy -> drifting; the server recalibrates
// into a shadow version and dark-launches it; once the shadow's realized
// error beats the live version's it is auto-promoted (old version kept
// for rollback); a final rollback restores the original in one step.
//
// Usage:
//
//	opprox-pilot [-budget 10] [-reports 8] [-drift 1.6] [-deg-drift 0]
//	             [-models DIR] [-phases 2] [-retrain]
//
// With -retrain the demo exercises the online retraining pipeline
// instead of the recalibration loop: the replay starts faithful to the
// model, then a synthetic phase shift is injected mid-stream (the last
// phase's realized behavior jumps), POST /v1/retrain replays the
// telemetry log — changepoint detection trims the pre-shift rows,
// candidate models are fit and judged on a telemetry holdout — and the
// winning candidate is dark-launched and auto-promoted once its
// realized error beats the live model's.
//
// With -models unset everything runs in a temp directory that is removed
// on exit; pass a directory to inspect the published model versions and
// the telemetry JSONL afterwards.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"opprox/internal/apps"
	"opprox/internal/apps/vidpipe"
	"opprox/internal/core"
	"opprox/internal/feedback"
	"opprox/internal/lifecycle"
	"opprox/internal/retrain"
	"opprox/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox-pilot: ")

	budget := flag.Float64("budget", 10, "QoS-degradation budget per dispatch")
	reports := flag.Int("reports", 8, "feedback reports to replay")
	drift := flag.Float64("drift", 1.6, "injected drift: realized speedup = predicted * drift")
	degDrift := flag.Float64("deg-drift", 0, "additional drift: realized degradation = predicted + deg-drift")
	modelsDir := flag.String("models", "", "model store directory (default: temp dir, removed on exit)")
	phases := flag.Int("phases", 2, "phases to train the demo model with")
	retrain := flag.Bool("retrain", false, "run the online-retraining demo: synthetic phase shift -> retrain -> shadow -> auto-promote")
	flag.Parse()

	if *retrain {
		if err := runRetrain(*budget, *drift, *degDrift, *modelsDir, *phases); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*budget, *reports, *drift, *degDrift, *modelsDir, *phases); err != nil {
		log.Fatal(err)
	}
}

func run(budget float64, reports int, drift, degDrift float64, modelsDir string, phases int) error {
	dir := modelsDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "opprox-pilot-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Train a small model for the video pipeline and publish it into the
	// store the way a trainer would.
	app, modelName, store, err := trainAndPublish(dir, phases)
	if err != nil {
		return err
	}

	// Closed-loop serving with demo-tight thresholds: a handful of
	// drifted reports is enough to detect, recalibrate and promote.
	flog, err := feedback.OpenLog(filepath.Join(dir, "telemetry.jsonl"), false)
	if err != nil {
		return err
	}
	defer flog.Close()
	srv := serve.New(serve.Options{
		Store: store,
		Drift: feedback.Options{
			Window: 8, MinSamples: 4, MaxExceedFrac: 0.5,
			CUSUMSlack: 0.02, CUSUMThreshold: 0.3, StaleAfter: 1000,
		},
		Lifecycle:   lifecycle.Options{ErrWindow: 8, MinShadowSamples: 4},
		FeedbackLog: flog,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (store: %s)\n\n", base, dir)

	params := apps.DefaultParams(app)
	dispatchBody, err := json.Marshal(map[string]any{
		"app": app.Name(), "budget": budget, "params": params, "model_path": modelName,
	})
	if err != nil {
		return err
	}

	// Replay: dispatch, then report realized QoS with the injected drift.
	var d dispatchView
	if err := postInto(base+"/v1/dispatch", string(dispatchBody), &d); err != nil {
		return err
	}
	v0 := d.ModelVersion
	fmt.Printf("dispatch: id=%s version=%s predicted %.3fx speedup, %.2f degradation\n",
		d.DispatchID, d.ModelVersion, d.Speedup, d.Degradation)
	fmt.Printf("injected drift: realized speedup = predicted * %.2f, degradation = predicted + %.2f\n\n",
		drift, degDrift)

	promotedAt := -1
	for i := 1; i <= reports; i++ {
		fb := feedbackBody(&d, drift, degDrift)
		var fr feedbackView
		if err := postInto(base+"/v1/feedback", fb, &fr); err != nil {
			return err
		}
		line := fmt.Sprintf("report %d: state=%s", i, fr.State)
		if fr.ShadowCreated != "" {
			line += fmt.Sprintf("  -> shadow %s dark-launched (recalibrated from feedback medians)", fr.ShadowCreated)
		}
		if fr.Promoted {
			line += "  -> shadow PROMOTED (realized-error window beat live)"
			promotedAt = i
		}
		if fr.Status == "stale_version" {
			line += "  (stale: dispatch predates the promoted version)"
		}
		fmt.Println(line)
		if fr.Promoted {
			break
		}
		// Keep the dark launch honest: dispatches continue while the
		// shadow is evaluated.
		if err := postInto(base+"/v1/dispatch", string(dispatchBody), &d); err != nil {
			return err
		}
	}
	if promotedAt < 0 {
		fmt.Printf("\nno promotion after %d reports — raise -drift or -reports\n", reports)
		return nil
	}

	fmt.Println()
	if err := printModels(base); err != nil {
		return err
	}

	// The promoted model now serves new dispatches under its version.
	if err := postInto(base+"/v1/dispatch", string(dispatchBody), &d); err != nil {
		return err
	}
	fmt.Printf("\ndispatch on promoted model: id=%s version=%s predicted %.3fx speedup, %.2f degradation\n",
		d.DispatchID, d.ModelVersion, d.Speedup, d.Degradation)

	// And the previous version is one step away.
	var lr struct {
		LiveVersion     string `json:"live_version"`
		PreviousVersion string `json:"previous_version"`
	}
	if err := postInto(base+"/v1/rollback", fmt.Sprintf(`{"model": %q}`, modelName), &lr); err != nil {
		return err
	}
	fmt.Printf("rollback: live=%s previous=%s (original %s restored)\n", lr.LiveVersion, lr.PreviousVersion, v0)
	return nil
}

// trainAndPublish trains the demo model for the video pipeline and
// publishes it into the store the way a trainer would.
func trainAndPublish(dir string, phases int) (apps.App, string, serve.FileStore, error) {
	app := vidpipe.New()
	store := serve.FileStore{Root: dir}
	fmt.Printf("training %s model (%d phases)...\n", app.Name(), phases)
	opts := core.DefaultOptions()
	opts.Phases = phases
	opts.JointSamplesPerPhase = 6
	opts.MaxParamCombos = 3
	opts.Folds = 5
	tr, err := core.Train(apps.NewRunner(app), opts)
	if err != nil {
		return nil, "", store, err
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		return nil, "", store, err
	}
	modelName := app.Name() + ".json"
	if err := store.Put(modelName, buf.Bytes()); err != nil {
		return nil, "", store, err
	}
	return app, modelName, store, nil
}

// runRetrain is the -retrain scenario: faithful telemetry, then a
// synthetic phase shift injected mid-stream, then the full retrain
// pipeline — extract, changepoint re-detection, candidate fits, holdout
// selection, dark launch — followed by feedback-driven auto-promotion.
func runRetrain(budget, drift, degDrift float64, modelsDir string, phases int) error {
	dir := modelsDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "opprox-pilot-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	app, modelName, store, err := trainAndPublish(dir, phases)
	if err != nil {
		return err
	}

	// A small rotation bound exercises segment replay: the retrain reads
	// rotated segments plus the live file as one stream.
	flog, err := feedback.OpenLogOptions(filepath.Join(dir, "telemetry.jsonl"),
		feedback.LogOptions{MaxBytes: 1 << 13})
	if err != nil {
		return err
	}
	defer flog.Close()
	srv := serve.New(serve.Options{
		Store: store,
		Drift: feedback.Options{
			Window: 8, MinSamples: 4, MaxExceedFrac: 0.5,
			CUSUMSlack: 0.02, CUSUMThreshold: 0.3, StaleAfter: 1000,
		},
		Lifecycle: lifecycle.Options{ErrWindow: 8, MinShadowSamples: 4},
		// Retraining is the drift response under demonstration; the
		// recalibrated-shadow path stays out of its way.
		FeedbackLog:            flog,
		DisableAutoRecalibrate: true,
		Retrain:                true,
		RetrainOpts:            retrain.Options{MinSamples: 16},
		Proactive:              true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (store: %s)\n\n", base, dir)

	params := apps.DefaultParams(app)
	dispatchBody := func(b float64) (string, error) {
		body, err := json.Marshal(map[string]any{
			"app": app.Name(), "budget": b, "params": params, "model_path": modelName,
		})
		return string(body), err
	}
	budgets := []float64{budget, budget * 0.75, budget * 1.25}

	// Telemetry: faithful reports, then the synthetic phase shift — the
	// LAST phase's realized behavior jumps while the others stay true to
	// the model, which is exactly the divergence re-detection looks for.
	const clean, shifted = 8, 16
	shiftPhase := phases - 1
	fmt.Printf("replaying %d faithful reports, then shifting phase %d (speedup *%.2f, degradation +%.2f) for %d more...\n",
		clean, shiftPhase, drift, degDrift, shifted)
	var d dispatchView
	var fr feedbackView
	v0 := ""
	for i := 1; i <= clean+shifted; i++ {
		body, err := dispatchBody(budgets[i%len(budgets)])
		if err != nil {
			return err
		}
		if err := postInto(base+"/v1/dispatch", body, &d); err != nil {
			return err
		}
		if v0 == "" {
			v0 = d.ModelVersion
		}
		fb := feedbackBody(&d, 1, 0)
		if i > clean {
			fb = phaseShiftBody(&d, shiftPhase, drift, degDrift)
		}
		if err := postInto(base+"/v1/feedback", fb, &fr); err != nil {
			return err
		}
	}
	fmt.Printf("telemetry logged: %d reports (%d post-shift), drift state=%s\n\n", clean+shifted, shifted, fr.State)

	// The retrain replays the log: changepoint detection should land on
	// the injected shift, and a candidate fit on the post-shift rows
	// should beat the live model on the telemetry holdout.
	var rv retrainView
	if err := postInto(base+"/v1/retrain", fmt.Sprintf(`{"model": %q}`, modelName), &rv); err != nil {
		return err
	}
	fmt.Printf("retrain: %d rows extracted, %d train after changepoint trim (changepoint=%d diverged=%v)\n",
		rv.Rows, rv.TrainRows, rv.Segmentation.Changepoint, rv.Segmentation.Diverged)
	for _, c := range rv.Candidates {
		if c.Err != "" {
			fmt.Printf("  candidate %-12s not built: %s\n", c.Name, c.Err)
			continue
		}
		fmt.Printf("  candidate %-12s version=%s holdout_err=%.4f (live %.4f)\n",
			c.Name, c.Version, c.HoldoutErr, rv.LiveHoldoutErr)
	}
	if rv.Status != "shadow_created" {
		fmt.Printf("retrain finished without a winner (%s) — raise -drift\n", rv.Status)
		return nil
	}
	fmt.Printf("winner %q dark-launched as shadow %s\n\n", rv.Winner, rv.ShadowVersion)

	// Auto-promotion: the shifted reality keeps flowing, and the shadow's
	// realized error beats the live model's.
	promotedAt := -1
	for i := 1; i <= 12; i++ {
		body, err := dispatchBody(budgets[i%len(budgets)])
		if err != nil {
			return err
		}
		if err := postInto(base+"/v1/dispatch", body, &d); err != nil {
			return err
		}
		if err := postInto(base+"/v1/feedback", phaseShiftBody(&d, shiftPhase, drift, degDrift), &fr); err != nil {
			return err
		}
		line := fmt.Sprintf("report %d: state=%s", i, fr.State)
		if fr.Promoted {
			line += "  -> retrained shadow PROMOTED (realized-error window beat live)"
			promotedAt = i
		}
		fmt.Println(line)
		if fr.Promoted {
			break
		}
	}
	if promotedAt < 0 {
		fmt.Printf("\nno promotion after 12 reports — raise -drift\n")
		return nil
	}
	fmt.Println()
	if err := printModels(base); err != nil {
		return err
	}
	if err := postInto(base+"/v1/dispatch", fmtBody(dispatchBody, budget), &d); err != nil {
		return err
	}
	fmt.Printf("\ndispatch on retrained model: version=%s (was %s)\n", d.ModelVersion, v0)
	return nil
}

// fmtBody adapts the dispatch-body builder where an error cannot occur
// (the same arguments already marshaled in the replay loop).
func fmtBody(build func(float64) (string, error), b float64) string {
	s, _ := build(b)
	return s
}

// phaseShiftBody reports realized values faithful to the model on every
// phase except shifted, which drifts — the synthetic phase shift.
func phaseShiftBody(d *dispatchView, shifted int, drift, degDrift float64) string {
	var obs []string
	for ph := 0; ph < d.Phases; ph++ {
		pred := d.PhasePreds[ph]
		s, deg := pred.Speedup, pred.Degradation
		if ph == shifted {
			s, deg = s*drift, deg+degDrift
		}
		obs = append(obs, fmt.Sprintf(
			`{"phase": %d, "realized_speedup": %g, "realized_degradation": %g}`, ph, s, deg))
	}
	return fmt.Sprintf(`{"dispatch_id": %q, "observations": [%s]}`,
		d.DispatchID, strings.Join(obs, ","))
}

// retrainView mirrors the POST /v1/retrain response.
type retrainView struct {
	Status         string  `json:"status"`
	Rows           int     `json:"rows"`
	TrainRows      int     `json:"train_rows"`
	LiveHoldoutErr float64 `json:"live_holdout_err"`
	Winner         string  `json:"winner"`
	ShadowVersion  string  `json:"shadow_version"`
	Candidates     []struct {
		Name       string  `json:"name"`
		Version    string  `json:"version"`
		HoldoutErr float64 `json:"holdout_err"`
		Err        string  `json:"err"`
	} `json:"candidates"`
	Segmentation struct {
		Diverged    bool  `json:"diverged"`
		Changepoint int   `json:"changepoint"`
		Counts      []int `json:"counts"`
	} `json:"segmentation"`
}

// dispatchView and feedbackView mirror the serve API responses the demo
// reads (decoded loosely; unknown fields ignored).
type dispatchView struct {
	Phases       int     `json:"phases"`
	Speedup      float64 `json:"predicted_speedup"`
	Degradation  float64 `json:"predicted_degradation"`
	Degraded     bool    `json:"degraded"`
	DispatchID   string  `json:"dispatch_id"`
	ModelVersion string  `json:"model_version"`
	PhasePreds   []struct {
		Speedup     float64 `json:"speedup"`
		Degradation float64 `json:"degradation"`
	} `json:"phase_predictions"`
}

type feedbackView struct {
	Status        string `json:"status"`
	State         string `json:"state"`
	ShadowCreated string `json:"shadow_created"`
	Promoted      bool   `json:"promoted"`
}

// feedbackBody reports drifted realized values for every served phase:
// the model's own per-phase predictions, scaled by the injected drift.
func feedbackBody(d *dispatchView, drift, degDrift float64) string {
	var obs []string
	for ph := 0; ph < d.Phases; ph++ {
		pred := d.PhasePreds[ph]
		obs = append(obs, fmt.Sprintf(
			`{"phase": %d, "realized_speedup": %g, "realized_degradation": %g}`,
			ph, pred.Speedup*drift, pred.Degradation+degDrift))
	}
	return fmt.Sprintf(`{"dispatch_id": %q, "observations": [%s]}`,
		d.DispatchID, strings.Join(obs, ","))
}

func postInto(url, body string, out any) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %d %s", url, resp.StatusCode, b)
	}
	return json.Unmarshal(b, out)
}

func printModels(base string) error {
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var mv struct {
		Models []struct {
			Name            string `json:"name"`
			LiveVersion     string `json:"live_version"`
			PreviousVersion string `json:"previous_version"`
			Health          string `json:"health"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		return err
	}
	for _, m := range mv.Models {
		fmt.Printf("lifecycle: %s live=%s previous=%s health=%s\n",
			m.Name, m.LiveVersion, m.PreviousVersion, m.Health)
	}
	return nil
}
