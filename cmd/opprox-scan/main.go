// Command opprox-scan statically discovers candidate approximable blocks
// (ABs) in a Go module: float-dominated loop nests, free of side effects,
// reducing into state that outlives them. It ranks candidates by a static
// approximability score and can emit an instrumented-harness skeleton
// wiring the discovered blocks to OPPROX's env-driven phase schedules.
//
// Usage:
//
//	opprox-scan [flags] [package-pattern ...]
//
// Patterns are module-relative directories ("internal/apps", "./..."),
// defaulting to ./... from the module root. Flags:
//
//	-json             write the JSON report to stdout instead of text
//	-out file         also write the JSON report to file
//	-harness file     write a generated harness skeleton to file
//	-harness-pkg name package name for the generated harness (default harness)
//	-min-ops n        minimum float operations per candidate (default 1)
//	-parallel n       packages scanned concurrently (default 4); the
//	                  report is identical at any setting
//	-cache-dir dir    per-package result cache root, resolved against the
//	                  module root (default .opprox-cache)
//	-no-cache         scan everything fresh, reading and writing no cache
//
// Exit status: 0 on success (candidates are informational, never a
// failure), 2 on usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"opprox/internal/analysis"
	"opprox/internal/analysis/discover"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "write the JSON report to stdout instead of the text ranking")
		outFile    = flag.String("out", "", "also write the JSON report to this file")
		harness    = flag.String("harness", "", "write a generated harness skeleton to this file")
		harnessPkg = flag.String("harness-pkg", "harness", "package name for the generated harness")
		minOps     = flag.Int("min-ops", 1, "minimum float operations per candidate")
		parallel   = flag.Int("parallel", 4, "packages scanned concurrently")
		cacheDir   = flag.String("cache-dir", ".opprox-cache", "per-package result cache root (relative to the module root)")
		noCache    = flag.Bool("no-cache", false, "scan everything fresh; read and write no cache")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: opprox-scan [flags] [package-pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-scan:", err)
		os.Exit(2)
	}
	var cache *analysis.Cache
	if !*noCache {
		dir := *cacheDir
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(loader.ModuleDir(), dir)
		}
		cache = &analysis.Cache{Dir: dir}
	}

	opts := discover.Options{MinOps: *minOps, Parallel: *parallel}
	report, stats, err := discover.RunCached(loader, cache, opts, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-scan:", err)
		os.Exit(2)
	}

	if *outFile != "" {
		if err := writeFile(*outFile, report.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-scan:", err)
			os.Exit(2)
		}
	}
	if *harness != "" {
		src, err := discover.GenerateHarness(report, *harnessPkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opprox-scan:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*harness, src, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-scan:", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-scan:", err)
			os.Exit(2)
		}
		return
	}
	if err := report.RenderText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "opprox-scan:", err)
		os.Exit(2)
	}
	fmt.Printf("opprox-scan: %d packages (%d cached), %d candidates\n",
		report.Packages, stats.Hits, len(report.Candidates))
}

// writeFile creates name and streams write into it.
func writeFile(name string, write func(w io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
