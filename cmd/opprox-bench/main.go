// Command opprox-bench is the reproducible benchmark harness: it runs the
// kernel benchmarks (`go test -bench`), parses the results, and records
// the performance trajectory as a BENCH_<pr>.json file with a "baseline"
// and a "current" section.
//
// Modes:
//
//	opprox-bench -pr 3 -out BENCH_3.json
//	    Run the benchmark set and write the trajectory file. If the output
//	    file already exists its baseline section is carried forward, so
//	    the before/after pair survives re-runs; otherwise an explicit
//	    -baseline-text (raw `go test -bench` output) seeds it, and failing
//	    that the current numbers do.
//
//	opprox-bench -against BENCH_3.json -max 0.20
//	    Re-run the benchmark set and fail (exit 1) if any benchmark's
//	    ns/op regressed more than the tolerance against the committed
//	    "current" numbers. scripts/check.sh runs this when BENCH=1.
//
//	opprox-bench -parse results.txt ...
//	    Use a saved `go test -bench` output instead of running, for
//	    ingesting measurements taken elsewhere.
//
// The experiment-suite benchmarks in the repository root are deliberately
// excluded from the default set: they run end-to-end training pipelines
// with multi-millisecond iterations and exist for profiling, not for the
// regression gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultPackages is the kernel benchmark set the trajectory tracks.
var defaultPackages = []string{
	"./internal/ml/linalg",
	"./internal/ml/poly",
	"./internal/ml/mic",
	"./internal/ml/tree",
	"./internal/core",
	"./internal/feedback",
	"./internal/serve",
	"./internal/shard",
	"./internal/admission",
	"./internal/retrain",
}

// Result is one benchmark measurement.
type Result struct {
	Iters    int     `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// File is the on-disk trajectory format.
type File struct {
	PR       int               `json:"pr"`
	Go       string            `json:"go"`
	Bench    string            `json:"bench"`
	Packages []string          `json:"packages"`
	Note     string            `json:"note,omitempty"`
	Baseline map[string]Result `json:"baseline"`
	Current  map[string]Result `json:"current"`
}

func main() {
	var (
		pr           = flag.Int("pr", 3, "PR number for the trajectory file")
		out          = flag.String("out", "", "write the trajectory JSON here (default BENCH_<pr>.json)")
		benchRe      = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime    = flag.String("benchtime", "", "passed through to go test -benchtime when non-empty")
		pkgsFlag     = flag.String("pkgs", "", "comma-separated package list (default: the kernel set)")
		parseFile    = flag.String("parse", "", "parse saved `go test -bench` output from this file instead of running")
		baselineText = flag.String("baseline-text", "", "seed the baseline section from this saved `go test -bench` output")
		against      = flag.String("against", "", "compare a fresh run against this trajectory file's current section and exit non-zero on regression")
		maxRegress   = flag.Float64("max", 0.20, "maximum tolerated fractional ns/op regression in -against mode")
		note         = flag.String("note", "", "free-form note recorded in the trajectory file")
	)
	flag.Parse()

	pkgs := defaultPackages
	if *pkgsFlag != "" {
		pkgs = strings.Split(*pkgsFlag, ",")
	}

	current, err := measure(*parseFile, *benchRe, *benchtime, pkgs)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results found"))
	}

	if *against != "" {
		committed, err := readFile(*against)
		if err != nil {
			fatal(err)
		}
		if err := compare(os.Stdout, committed.Current, current, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("bench: no ns/op regression beyond %.0f%% against %s\n", *maxRegress*100, *against)
		return
	}

	outPath := *out
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	baseline, err := resolveBaseline(outPath, *baselineText, current)
	if err != nil {
		fatal(err)
	}
	f := File{
		PR:       *pr,
		Go:       runtime.Version(),
		Bench:    *benchRe,
		Packages: pkgs,
		Note:     *note,
		Baseline: baseline,
		Current:  current,
	}
	buf, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		fatal(err)
	}
	summarize(os.Stdout, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opprox-bench:", err)
	os.Exit(2)
}

// measure obtains the current benchmark numbers: from a saved output file
// when parsePath is set, otherwise by running `go test -bench`.
func measure(parsePath, benchRe, benchtime string, pkgs []string) (map[string]Result, error) {
	if parsePath != "" {
		r, err := os.Open(parsePath)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return parseBench(r)
	}
	args := []string{"test", "-run=^$", "-bench=" + benchRe, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime="+benchtime)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var outBuf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&outBuf, os.Stderr) // stream progress, keep a copy to parse
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return parseBench(&outBuf)
}

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. Names are normalized by stripping the -GOMAXPROCS suffix, so
// files compare across machines. Duplicate names are an error: the
// trajectory file is keyed by bare benchmark name.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		res := Result{Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsOp, err = strconv.ParseInt(val, 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
		}
		if res.NsOp == 0 {
			continue
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate benchmark name %q (trajectory files are keyed by bare name)", name)
		}
		out[name] = res
	}
	return out, sc.Err()
}

// resolveBaseline picks the baseline section for a new trajectory file:
// an existing file's baseline wins (the before/after pair must survive
// re-runs), then an explicit saved-output seed, then the current numbers.
func resolveBaseline(outPath, baselineText string, current map[string]Result) (map[string]Result, error) {
	if prev, err := readFile(outPath); err == nil && len(prev.Baseline) > 0 {
		return prev.Baseline, nil
	}
	if baselineText != "" {
		r, err := os.Open(baselineText)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return parseBench(r)
	}
	return current, nil
}

func readFile(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// compare fails when any benchmark present in both maps regressed in
// ns/op by more than maxRegress. Missing or new benchmarks are reported
// but not fatal: adding a benchmark must not break the gate.
func compare(w io.Writer, committed, current map[string]Result, maxRegress float64) error {
	var regressions []string
	for _, name := range sortedNames(committed) {
		want := committed[name]
		got, ok := current[name]
		if !ok {
			fmt.Fprintf(w, "bench: %s missing from current run (skipped)\n", name)
			continue
		}
		ratio := got.NsOp / want.NsOp
		fmt.Fprintf(w, "bench: %-40s %12.1f ns/op vs %12.1f committed (%+.1f%%)\n",
			name, got.NsOp, want.NsOp, (ratio-1)*100)
		if ratio > 1+maxRegress {
			regressions = append(regressions, fmt.Sprintf("%s: %.1f ns/op vs %.1f committed (%.0f%% > %.0f%% tolerance)",
				name, got.NsOp, want.NsOp, (ratio-1)*100, maxRegress*100))
		}
	}
	for _, name := range sortedNames(current) {
		if _, ok := committed[name]; !ok {
			fmt.Fprintf(w, "bench: %s is new (not in committed file)\n", name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regressions:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// summarize prints the trajectory (baseline -> current) for every
// benchmark, sorted by name.
func summarize(w io.Writer, f File) {
	for _, name := range sortedNames(f.Current) {
		cur := f.Current[name]
		base, ok := f.Baseline[name]
		if !ok || base.NsOp == 0 {
			fmt.Fprintf(w, "%-40s %12.1f ns/op %8d allocs/op (no baseline)\n", name, cur.NsOp, cur.AllocsOp)
			continue
		}
		fmt.Fprintf(w, "%-40s %12.1f -> %12.1f ns/op (%.2fx)  %d -> %d allocs/op\n",
			name, base.NsOp, cur.NsOp, base.NsOp/cur.NsOp, base.AllocsOp, cur.AllocsOp)
	}
}
