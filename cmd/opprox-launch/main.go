// Command opprox-launch is the runtime half of the paper's deployment
// flow (§4.2): given a job configuration file naming the stored models and
// an error budget, it loads the models, finds the best phase-specific
// approximation settings, and prints the environment-variable assignments
// the job should be launched with (the scheduler integration point).
//
// Usage:
//
//	opprox-launch job.json
//
// where job.json looks like:
//
//	{
//	  "app": "lulesh",
//	  "budget": 10,
//	  "params": {"mesh": 64, "regions": 2},
//	  "model_path": "lulesh-models.json"
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"opprox/internal/launch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox-launch: ")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: opprox-launch <job-config.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfgFile, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer cfgFile.Close()
	cfg, err := launch.ParseJobConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}

	models, err := os.Open(cfg.ModelPath)
	if err != nil {
		log.Fatalf("opening models: %v", err)
	}
	defer models.Close()

	plan, err := launch.Dispatch(cfg, models)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(os.Stderr, "app %s, budget %.3g: predicted %.3fx speedup at %.2f degradation\n",
		cfg.App, cfg.Budget, plan.Pred.Speedup, plan.Pred.Degradation)
	for _, kv := range plan.Env {
		fmt.Println(kv)
	}
}
