// Command opprox trains OPPROX on one of the benchmark applications and
// prints the phase-aware approximation schedule it chooses for a QoS
// degradation budget, next to the phase-agnostic exhaustive baseline.
//
// Usage:
//
//	opprox -app lulesh -budget 10 [-phases 0] [-seed 1] [-oracle]
//
// -phases 0 runs the paper's Algorithm 1 to choose the granularity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"opprox"
	"opprox/internal/core"
	"opprox/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox: ")

	appName := flag.String("app", "lulesh", "application: lulesh, comd, vidpipe, tracker, pso")
	budget := flag.Float64("budget", 10, "QoS degradation budget (percent; for vidpipe, 50-PSNR target)")
	phases := flag.Int("phases", 4, "phase count; 0 runs Algorithm 1's granularity search")
	seed := flag.Int64("seed", 1, "training seed")
	oracle := flag.Bool("oracle", false, "also run the phase-agnostic exhaustive oracle baseline")
	saveModels := flag.String("save", "", "write the trained models to this file (JSON)")
	explain := flag.Bool("explain", false, "print a report of the trained models")
	profile := flag.Bool("profile", false, "print the per-block sensitivity profile before training")
	validate := flag.Int("validate", 0, "measure N fresh probes against the trained models and report calibration")
	paramFlag := flag.String("params", "", "override input parameters, e.g. \"mesh=64,regions=4\"")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot (run counts, cache hits, fit durations) to this file on exit")
	frontLibrary := flag.Bool("front-library", false, "build the Pareto-front plan library at train time (persisted with -save)")
	expandFeatures := flag.Bool("expand-features", false, "widen model inputs with derived interaction terms (MIC-pruned)")
	flag.Parse()

	if *metrics != "" {
		defer func() {
			f, err := os.Create(*metrics)
			if err != nil {
				log.Fatal(err)
			}
			if err := obs.Default.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metrics)
		}()
	}

	var app opprox.App
	for _, a := range opprox.Benchmarks() {
		if a.Name() == *appName {
			app = a
		}
	}
	if app == nil {
		log.Fatalf("unknown app %q (want lulesh, comd, vidpipe, tracker, or pso)", *appName)
	}

	params := opprox.DefaultParams(app)
	if *paramFlag != "" {
		for _, kv := range strings.Split(*paramFlag, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad parameter assignment %q", kv)
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				log.Fatalf("bad parameter value in %q: %v", kv, err)
			}
			params[strings.TrimSpace(parts[0])] = v
		}
	}

	opts := opprox.DefaultOptions()
	opts.Seed = *seed
	opts.Phases = *phases
	opts.FrontLibrary = *frontLibrary
	opts.ExpandFeatures = *expandFeatures

	sys := opprox.New(app)
	if *profile {
		fmt.Fprintf(os.Stderr, "sensitivity profiling %s...\n", app.Name())
		profiles, err := core.SensitivityProfile(sys.Runner, params, opts.UsableDegradation)
		if err != nil {
			log.Fatal(err)
		}
		for _, bp := range profiles {
			fmt.Printf("block %s (%s): usable up to level %d\n", bp.Block.Name, bp.Block.Technique, bp.MaxUsableLevel)
			for _, lr := range bp.Levels {
				fmt.Printf("  level %d: speedup %.3f, degradation %.2f, iterations %d\n",
					lr.Level, lr.Speedup, lr.Degradation, lr.Iters)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "training %s (this samples the application a few thousand times)...\n", app.Name())
	if err := sys.Train(opts); err != nil {
		log.Fatal(err)
	}
	if *saveModels != "" {
		f, err := os.Create(*saveModels)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Models.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "models written to %s (load them with opprox-launch)\n", *saveModels)
	}
	sR2, dR2 := sys.Models.ModelQuality()
	fmt.Printf("trained: %d phases, %d records, %.3gs; model R² speedup=%.3f degradation=%.3f\n",
		sys.Models.Phases, len(sys.Models.Records), sys.Models.TrainTime.Seconds(), sR2, dR2)
	if *explain {
		fmt.Println()
		fmt.Print(sys.Models.Explain())
	}

	if *validate > 0 {
		cal, err := core.ValidateModels(sys.Runner, sys.Models, params, *validate, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(cal)
	}

	sched, pred, err := sys.Optimize(params, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule for budget %.3g on %s:\n", *budget, params.Key())
	blocks := app.Blocks()
	var names []string
	for _, b := range blocks {
		names = append(names, b.Name)
	}
	fmt.Printf("  blocks: [%s]\n", strings.Join(names, " "))
	for ph, cfg := range sched.Levels {
		fmt.Printf("  phase %d: %s\n", ph+1, cfg)
	}
	fmt.Printf("predicted: speedup %.3f, degradation %.2f\n",
		pred.Speedup, pred.Degradation)

	ev, err := sys.Evaluate(params, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:  speedup %.3f (%.1f%% less work), degradation %.2f\n",
		ev.Speedup, core.WorkSaved(ev.Speedup), ev.Degradation)

	if *oracle {
		fmt.Fprintf(os.Stderr, "running phase-agnostic exhaustive oracle...\n")
		or, err := opprox.PhaseAgnosticOracle(sys.Runner, params, *budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("oracle:    speedup %.3f (%.1f%% less work), degradation %.2f, config %s (%d settings tried)\n",
			or.Speedup, core.WorkSaved(or.Speedup), or.Degradation, or.Config, or.Evaluated)
	}
}
