// Command opprox-serve is the long-running form of the paper's runtime
// flow (§4.2): instead of re-running a script per job, it keeps trained
// model sets resident in memory and answers dispatch requests over an
// HTTP/JSON API.
//
// Usage:
//
//	opprox-serve [-addr 127.0.0.1:7077] [-models DIR] [-timeout 10s]
//
// Endpoints:
//
//	POST /v1/dispatch  {"app": "pso", "budget": 10, "model_path": "pso.json"}
//	POST /v1/feedback  {"dispatch_id": "...", "observations": [...]}
//	GET  /v1/models    lifecycle view: versions, drift health, shadows
//	POST /v1/promote   {"model": "pso.json"}
//	POST /v1/rollback  {"model": "pso.json"}
//	POST /v1/retrain   {"model": "pso.json"}  (requires -retrain and -feedback-log)
//	POST /v1/reload    {"model": "pso.json"}  (empty body reloads all)
//	GET  /v1/cluster   shard topology: replicas + model ownership
//	GET  /v1/admission admission/ladder state; POST {"force_step": N} pins it
//	GET  /healthz
//	GET  /metricsz
//
// Model files are read from -models (path traversal outside it is
// rejected) and cached after one validated load. A dispatch whose model
// is missing or corrupt returns the all-accurate schedule with
// "degraded": true unless the request sets "strict": true. Pass -addr
// with port 0 to bind an ephemeral port; the chosen address is printed
// on the "listening on" line.
//
// The closed loop: each dispatch response carries a "dispatch_id";
// clients report realized per-phase QoS back on /v1/feedback. A drift
// detector (band exceedances + CUSUM, see -drift-* flags) flips models
// healthy -> drifting -> stale; on drifting the server recalibrates into
// a shadow version served in dark-launch mode and auto-promotes it when
// its realized error beats the live version's. Shadow and promoted
// versions are persisted into -models atomically; -feedback-log appends
// every accepted observation as JSONL (rotated into numbered segments
// when -feedback-log-max-bytes is set).
//
// Online retraining (-retrain): the telemetry log is replayed into
// training matrices, phase boundaries are re-detected from realized
// behavior, and candidate models (recalibrate / refit / pooled refit)
// are fit and judged on a held-out telemetry suffix; the winner is
// dark-launched as a shadow through the same promote/rollback
// machinery. Triggered by POST /v1/retrain or automatically when a
// model goes stale. -proactive adds the Capri-style controller: between
// retrains, observed degradation residuals tighten the served budget
// open-loop (see X-Opprox-Correction on corrected responses).
//
// Serving at scale: repeat dispatches are answered from a bounded
// dispatch-plan cache (-plan-cache) and concurrent cold dispatches are
// coalesced into batched optimization passes; both are transparent —
// responses stay byte-identical to uncached serving. Passing
// -shard-self and -shard-replicas makes this process one replica of a
// sharded fleet: models are partitioned across replicas by rendezvous
// hashing and any replica proxies requests for models it does not own
// to the owner (see GET /v1/cluster).
//
// Overload handling: concurrent dispatch computations are capped
// (-max-inflight) and a load-adaptive degradation ladder serves
// cache hits, budget-coarsened plans (-coarse-quantum), then a
// deterministic all-accurate fallback, then 429 + Retry-After as
// pressure rises — see GET /v1/admission. Optional rate limiting
// (-client-rate, -global-rate, -failure-limit and friends) fronts
// /v1/dispatch and /v1/feedback with per-client and global token
// buckets plus an invalid-body lockout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"opprox/internal/admission"
	"opprox/internal/feedback"
	"opprox/internal/lifecycle"
	"opprox/internal/obs"
	"opprox/internal/qos"
	"opprox/internal/retrain"
	"opprox/internal/serve"
)

// parseReplicas parses the -shard-replicas flag: comma-separated
// name=url pairs.
func parseReplicas(spec string) (map[string]string, error) {
	replicas := map[string]string{}
	for _, pair := range strings.Split(spec, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -shard-replicas entry %q (want name=url)", pair)
		}
		if _, dup := replicas[name]; dup {
			return nil, fmt.Errorf("duplicate replica %q in -shard-replicas", name)
		}
		replicas[name] = url
	}
	return replicas, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox-serve: ")

	addr := flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks an ephemeral port)")
	models := flag.String("models", ".", "model store directory")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "per-request budget")
	retries := flag.Int("retries", 2, "extra attempts for transient model-store reads")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff (doubles per attempt)")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file on shutdown")
	feedbackLog := flag.String("feedback-log", "", "append accepted feedback observations to this JSONL file (fsync per entry)")
	feedbackLogMaxBytes := flag.Int64("feedback-log-max-bytes", 0, "rotate the feedback log into numbered segments past this size (0: never)")
	driftWindow := flag.Int("drift-window", 0, "per-phase feedback window for drift detection (0: default)")
	driftMinSamples := flag.Int("drift-min-samples", 0, "samples required before exceedance drift can fire (0: default)")
	driftExceed := flag.Float64("drift-exceed", 0, "band-exceedance fraction that flags drift (0: default)")
	cusumSlack := flag.Float64("cusum-slack", 0, "CUSUM slack on log-residuals (0: default)")
	cusumThreshold := flag.Float64("cusum-threshold", 0, "CUSUM alarm threshold (0: default)")
	staleAfter := flag.Int("stale-after", 0, "drifting reports before a model is declared stale (0: default)")
	errWindow := flag.Int("err-window", 0, "realized-error window for the live-vs-shadow comparison (0: default)")
	shadowSamples := flag.Int("shadow-samples", 0, "error samples required before auto-promotion (0: default)")
	autoPromote := flag.Bool("auto-promote", true, "promote a shadow automatically once it beats the live version")
	autoRecal := flag.Bool("auto-recalibrate", true, "dark-launch a recalibrated shadow when a model drifts")
	planCache := flag.Int("plan-cache", 0, "dispatch-plan cache capacity (0: default, negative: disable)")
	frontLibrary := flag.Bool("front-library", false, "build the Pareto-front plan library for every loaded model (fast dispatch-time optimization)")
	shardSelf := flag.String("shard-self", "", "this replica's name in a sharded fleet (requires -shard-replicas)")
	shardReplicas := flag.String("shard-replicas", "", "comma-separated name=url replica set, including self (e.g. a=http://127.0.0.1:7077,b=http://127.0.0.1:7078)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent dispatch computations (0: default, negative: uncapped)")
	clientRate := flag.Float64("client-rate", 0, "per-client admission rate in requests/s (0: unlimited)")
	clientBurst := flag.Float64("client-burst", 0, "per-client token-bucket burst (0: defaults from -client-rate)")
	globalRate := flag.Float64("global-rate", 0, "global admission rate in requests/s across all clients (0: unlimited)")
	globalBurst := flag.Float64("global-burst", 0, "global token-bucket burst (0: defaults from -global-rate)")
	failureLimit := flag.Int("failure-limit", 0, "invalid bodies within -failure-window that lock a client out (0: no lockout)")
	failureWindow := flag.Duration("failure-window", 0, "sliding window for -failure-limit (0: default)")
	lockout := flag.Duration("lockout", 0, "how long a locked-out client stays rejected (0: default)")
	maxClients := flag.Int("max-clients", 0, "bound on tracked per-client limiter state (0: default)")
	coarseQuantum := flag.Float64("coarse-quantum", 0, "budget grid of degradation-ladder step 1 (0: default, negative: no quantization)")
	ladderDwell := flag.Int("ladder-dwell", 0, "consecutive calm pressure updates before the ladder steps down (0: default)")
	forceLadderStep := flag.Int("force-ladder-step", -1, "pin the degradation ladder to a step at startup (-1: load-controlled)")
	retrainOn := flag.Bool("retrain", false, "enable online retraining from the feedback log (requires -feedback-log)")
	retrainMinSamples := flag.Int("retrain-min-samples", 0, "telemetry rows a retrain needs before it runs (0: default)")
	retrainMaxRows := flag.Int("retrain-max-rows", 0, "most recent telemetry rows a retrain extracts (0: default)")
	redetectThreshold := flag.Float64("phase-redetect-threshold", 0, "phase re-detection divergence threshold on the log scales (0: default)")
	retrainSeed := flag.Int64("retrain-seed", 0, "seed for retrain CV fold shuffles (0: default)")
	proactive := flag.Bool("proactive", false, "enable the proactive controller: correct served budgets from observed degradation residuals")
	correctionQuantum := flag.Float64("correction-quantum", 0, "grid the proactive budget correction is quantized onto (0: default)")
	correctionMax := flag.Float64("correction-max", 0, "clamp on the proactive budget correction, log1p scale (0: default)")
	flag.Parse()

	var flog *feedback.Log
	if *feedbackLog != "" {
		var err error
		flog, err = feedback.OpenLogOptions(*feedbackLog, feedback.LogOptions{
			Sync:     true,
			MaxBytes: *feedbackLogMaxBytes,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer flog.Close()
	}
	if *retrainOn && flog == nil {
		log.Fatal("-retrain requires -feedback-log (the pipeline replays it)")
	}

	// Rate limiting is opt-in: the limiter exists only when at least
	// one admission knob is set, so a bare opprox-serve behaves exactly
	// as before (the in-flight gate and degradation ladder always run).
	var adm *admission.Options
	if *clientRate > 0 || *globalRate > 0 || *failureLimit > 0 {
		adm = &admission.Options{
			ClientRate:    *clientRate,
			ClientBurst:   *clientBurst,
			GlobalRate:    *globalRate,
			GlobalBurst:   *globalBurst,
			FailureLimit:  *failureLimit,
			FailureWindow: *failureWindow,
			Lockout:       *lockout,
			MaxClients:    *maxClients,
		}
	}

	srv := serve.New(serve.Options{
		Store:   serve.FileStore{Root: *models},
		Timeout: *timeout,
		Registry: serve.RegistryOptions{
			Retries:   *retries,
			RetryBase: *retryBase,
		},
		Drift: feedback.Options{
			Window:         *driftWindow,
			MinSamples:     *driftMinSamples,
			MaxExceedFrac:  *driftExceed,
			CUSUMSlack:     *cusumSlack,
			CUSUMThreshold: *cusumThreshold,
			StaleAfter:     *staleAfter,
		},
		Lifecycle: lifecycle.Options{
			ErrWindow:          *errWindow,
			MinShadowSamples:   *shadowSamples,
			DisableAutoPromote: !*autoPromote,
		},
		FeedbackLog:            flog,
		DisableAutoRecalibrate: !*autoRecal,
		PlanCacheCap:           *planCache,
		FrontLibrary:           *frontLibrary,
		Admission:              adm,
		MaxInFlight:            *maxInFlight,
		Ladder:                 qos.LadderOptions{Dwell: *ladderDwell},
		CoarseQuantum:          *coarseQuantum,
		Retrain:                *retrainOn,
		RetrainOpts: retrain.Options{
			MinSamples:        *retrainMinSamples,
			MaxRows:           *retrainMaxRows,
			RedetectThreshold: *redetectThreshold,
			Seed:              *retrainSeed,
		},
		Proactive:         *proactive,
		CorrectionQuantum: *correctionQuantum,
		CorrectionMax:     *correctionMax,
	})
	if *forceLadderStep >= 0 {
		if err := srv.ForceLadderStep(*forceLadderStep); err != nil {
			log.Fatal(err)
		}
		log.Printf("degradation ladder pinned to step %d", *forceLadderStep)
	}

	if (*shardSelf == "") != (*shardReplicas == "") {
		log.Fatal("-shard-self and -shard-replicas must be set together")
	}
	if *shardSelf != "" {
		replicas, err := parseReplicas(*shardReplicas)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.ConfigureCluster(serve.ClusterOptions{Self: *shardSelf, Replicas: replicas}); err != nil {
			log.Fatal(err)
		}
		log.Printf("sharded: replica %q of %d", *shardSelf, len(replicas))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s (models: %s)", ln.Addr(), *models)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}

	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.Default.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metrics)
	}
}
