// Command opprox-vet runs OPPROX's determinism and concurrency analyzers
// (internal/analysis) over the module and fails on unsuppressed findings.
// It is the static half of the tier-1 gate: `make vet` / scripts/check.sh
// run it with -severity warning.
//
// Usage:
//
//	opprox-vet [flags] [package-pattern ...]
//
// Patterns are module-relative directories ("internal/core", "./..."),
// defaulting to ./... from the module root. Flags:
//
//	-severity level   minimum severity that fails the run (info|warning|error)
//	-json             write the JSON report to stdout instead of text
//	-out file         also write the JSON report to file
//	-pkg list         comma-separated package filters applied to the
//	                  expanded pattern set ("pso", "internal/apps/...",
//	                  "opprox/internal/*")
//	-cache-dir dir    per-package result cache root, resolved against the
//	                  module root (default .opprox-cache)
//	-no-cache         analyze everything fresh, reading and writing no cache
//	-list             list registered analyzers and exit
//
// Results are cached per package, keyed on a content hash of the package's
// sources, its in-module import closure, the analyzer set and the Go
// version; a warm run re-analyzes only what changed and produces a report
// byte-identical to a cold run.
//
// Exit status: 0 clean, 1 findings at or above the threshold, 2 usage or
// load error. False positives are silenced in place with
// `//opprox:vet-ignore <analyzer>` on the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"opprox/internal/analysis"
)

func main() {
	var (
		severity = flag.String("severity", "warning", "minimum severity that fails the run (info|warning|error)")
		jsonOut  = flag.Bool("json", false, "write the JSON report to stdout instead of text diagnostics")
		outFile  = flag.String("out", "", "also write the JSON report to this file")
		pkgList  = flag.String("pkg", "", "comma-separated package filters (name, dir/..., or glob)")
		cacheDir = flag.String("cache-dir", ".opprox-cache", "per-package result cache root (relative to the module root)")
		noCache  = flag.Bool("no-cache", false, "analyze everything fresh; read and write no cache")
		list     = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: opprox-vet [flags] [package-pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %-8s %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}

	min, err := analysis.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}

	var cache *analysis.Cache
	if !*noCache {
		dir := *cacheDir
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(loader.ModuleDir(), dir)
		}
		cache = &analysis.Cache{Dir: dir}
	}
	var only func(string) bool
	if *pkgList != "" {
		only = func(path string) bool { return analysis.MatchAnyPackage(*pkgList, path) }
	}

	analyzers := analysis.All()
	report, stats, err := loader.RunCached(cache, analyzers, patterns, only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
	}

	failing := len(analysis.Unsuppressed(report.Diagnostics, min))
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
	} else {
		analysis.WriteText(os.Stdout, report.Diagnostics, min)
		fmt.Printf("opprox-vet: %d packages (%d cached), %d findings at or above %s (%d suppressed)\n",
			report.Packages, stats.Hits, failing, min, report.Suppressed)
	}
	if failing > 0 {
		os.Exit(1)
	}
}
