// Command opprox-vet runs OPPROX's determinism and concurrency analyzers
// (internal/analysis) over the module and fails on unsuppressed findings.
// It is the static half of the tier-1 gate: `make vet` / scripts/check.sh
// run it with -severity warning.
//
// Usage:
//
//	opprox-vet [flags] [package-pattern ...]
//
// Patterns are module-relative directories ("internal/core", "./..."),
// defaulting to ./... from the module root. Flags:
//
//	-severity level   minimum severity that fails the run (info|warning|error)
//	-json             write the JSON report to stdout instead of text
//	-out file         also write the JSON report to file
//	-list             list registered analyzers and exit
//
// Exit status: 0 clean, 1 findings at or above the threshold, 2 usage or
// load error. False positives are silenced in place with
// `//opprox:vet-ignore <analyzer>` on the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"opprox/internal/analysis"
)

func main() {
	var (
		severity = flag.String("severity", "warning", "minimum severity that fails the run (info|warning|error)")
		jsonOut  = flag.Bool("json", false, "write the JSON report to stdout instead of text diagnostics")
		outFile  = flag.String("out", "", "also write the JSON report to this file")
		list     = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: opprox-vet [flags] [package-pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %-8s %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}

	min, err := analysis.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprox-vet:", err)
		os.Exit(2)
	}

	analyzers := analysis.All()
	diags := loader.Run(pkgs, analyzers)
	report := analysis.NewReport(patterns, pkgs, analyzers, diags)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
	}

	failing := len(analysis.Unsuppressed(diags, min))
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "opprox-vet:", err)
			os.Exit(2)
		}
	} else {
		analysis.WriteText(os.Stdout, diags, min)
		fmt.Printf("opprox-vet: %d packages, %d findings at or above %s (%d suppressed)\n",
			report.Packages, failing, min, report.Suppressed)
	}
	if failing > 0 {
		os.Exit(1)
	}
}
