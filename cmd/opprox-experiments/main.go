// Command opprox-experiments regenerates every table and figure of the
// paper's evaluation against the simulated substrates and prints them as
// plain-text tables.
//
// Usage:
//
//	opprox-experiments                  # run everything (a few minutes)
//	opprox-experiments -only fig14      # one artifact
//	opprox-experiments -quick           # reduced sampling, for smoke runs
//	opprox-experiments -list            # list artifact IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"opprox/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox-experiments: ")

	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced sampling for fast smoke runs")
	seed := flag.Int64("seed", 1, "suite seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	suite := experiments.NewSuite(*seed, *quick)
	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		tab, err := e.Run(suite)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", tab.ID, tab.Title, tab.RenderCSV())
		default:
			fmt.Println(tab.Render())
		}
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total: %s\n", time.Since(start).Round(time.Millisecond))
}
