// Command opprox-experiments regenerates every table and figure of the
// paper's evaluation against the simulated substrates and prints them as
// plain-text tables.
//
// Usage:
//
//	opprox-experiments                  # run everything (a few minutes)
//	opprox-experiments -only fig14      # one artifact
//	opprox-experiments -quick           # reduced sampling, for smoke runs
//	opprox-experiments -parallel 4      # run experiments concurrently;
//	                                    # output is byte-identical to serial
//	opprox-experiments -metrics m.json  # write an observability snapshot
//	opprox-experiments -list            # list artifact IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"opprox/internal/experiments"
	"opprox/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opprox-experiments: ")

	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced sampling for fast smoke runs")
	seed := flag.Int64("seed", 1, "suite seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", 1, "experiments run concurrently (0 = all CPUs); artifact output order and bytes are unchanged")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot (cache hits, run counts, fit durations, run events) to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	suite := experiments.NewSuite(*seed, *quick)
	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	runErr := experiments.RunAllFunc(ctx, suite, selected, *parallel, func(r experiments.RunResult) error {
		if r.Err != nil {
			// Matches the serial behavior: report the first failure and
			// stop emitting (the engine cancels the rest).
			return fmt.Errorf("%s: %w", r.Experiment.ID, r.Err)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", r.Table.ID, r.Table.Title, r.Table.RenderCSV())
		default:
			fmt.Println(r.Table.Render())
		}
		fmt.Fprintf(os.Stderr, "[%s took %s]\n", r.Experiment.ID, r.Duration.Round(time.Millisecond))
		return nil
	})
	fmt.Fprintf(os.Stderr, "total: %s\n", time.Since(start).Round(time.Millisecond))

	if *metrics != "" {
		if err := writeMetrics(*metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metrics)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
