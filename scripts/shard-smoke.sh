#!/bin/sh
# Sharded-serving smoke: train a small model set, start a real 3-replica
# opprox-serve fleet (-shard-self/-shard-replicas), and drive the whole
# drill through a replica that does NOT own the model — so every step
# exercises the proxy/forwarding path:
#
#   - identical dispatch bodies from all three replicas (byte compare)
#   - /v1/cluster topology introspection
#   - drifted feedback forwarded to the owner -> shadow dark-launched
#   - proxied promote -> new version served by every replica
#   - proxied rollback -> every replica byte-identical to the original
#   - clean SIGTERM shutdown of the fleet
#
# Everything runs out of a throwaway directory on ports derived from the
# script's PID.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/opprox" ./cmd/opprox
go build -o "$tmp/opprox-serve" ./cmd/opprox-serve

mkdir "$tmp/models"
"$tmp/opprox" -app pso -phases 2 -budget 10 -save "$tmp/models/pso.json" >/dev/null

# Replicas need each other's URLs before any of them binds, so the fleet
# runs on pre-chosen ports derived from this PID.
base=$((10000 + $$ % 40000))
pa=$base; pb=$((base + 1)); pc=$((base + 2))
replicas="a=http://127.0.0.1:$pa,b=http://127.0.0.1:$pb,c=http://127.0.0.1:$pc"

start_replica() { # name port
    "$tmp/opprox-serve" -addr "127.0.0.1:$2" -models "$tmp/models" \
        -shard-self "$1" -shard-replicas "$replicas" \
        -drift-window 8 -drift-min-samples 4 -drift-exceed 0.5 \
        -cusum-slack 0.02 -cusum-threshold 0.3 \
        -auto-promote=false \
        2>"$tmp/serve-$1.log" &
    pids="$pids $!"
}
start_replica a "$pa"
start_replica b "$pb"
start_replica c "$pc"

wait_up() { # name port
    i=0
    while [ $i -lt 100 ]; do
        if curl -sf "http://127.0.0.1:$2/healthz" >/dev/null 2>&1; then return 0; fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "shard-smoke: replica $1 never came up:" >&2
    cat "$tmp/serve-$1.log" >&2
    exit 1
}
wait_up a "$pa"
wait_up b "$pb"
wait_up c "$pc"
echo "shard-smoke: fleet up on ports $pa/$pb/$pc"

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
dispatch() { # port
    curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://127.0.0.1:$1/v1/dispatch"
}

# Byte-identical dispatches from every replica: b owns pso.json under
# the fixed rendezvous hash, so a and c answer via a proxy hop.
ra=$(dispatch "$pa")
rb=$(dispatch "$pb")
rc=$(dispatch "$pc")
[ "$ra" = "$rb" ] && [ "$rb" = "$rc" ] || {
    echo "shard-smoke: replicas disagree on the same dispatch:" >&2
    printf 'a: %s\nb: %s\nc: %s\n' "$ra" "$rb" "$rc" >&2
    exit 1; }
echo "$ra" | grep -q '"degraded":false' || {
    echo "shard-smoke: dispatch degraded or failed: $ra" >&2; exit 1; }

# Topology introspection: every replica agrees the fleet is sharded and
# the owner (only the owner's registry holds the model it serves).
curl -sf "http://127.0.0.1:$pa/v1/cluster" | grep -q '"sharded":true' || {
    echo "shard-smoke: /v1/cluster does not report sharding" >&2; exit 1; }
curl -sf "http://127.0.0.1:$pb/v1/cluster" | \
    grep -q '"name":"pso.json","owner":"b","local":true' || {
    echo "shard-smoke: replica b does not own pso.json locally" >&2
    curl -sf "http://127.0.0.1:$pb/v1/cluster" >&2 || true
    exit 1; }

dispatch_id=$(echo "$ra" | sed -n 's/.*"dispatch_id":"\([^"]*\)".*/\1/p')
v0=$(echo "$ra" | sed -n 's/.*"model_version":"\([^"]*\)".*/\1/p')
[ -n "$dispatch_id" ] && [ -n "$v0" ] || {
    echo "shard-smoke: dispatch response missing id/version: $ra" >&2; exit 1; }

# Drifted feedback reported to non-owner a: a holds no record for the
# dispatch and must forward the report to the owner.
fb="{\"dispatch_id\": \"$dispatch_id\", \"observations\": [
  {\"phase\": 0, \"realized_speedup\": 10, \"realized_degradation\": 5},
  {\"phase\": 1, \"realized_speedup\": 10, \"realized_degradation\": 5}]}"
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$fb" "http://127.0.0.1:$pa/v1/feedback")
echo "$resp" | grep -q '"state":"drifting"' || {
    echo "shard-smoke: forwarded feedback did not flip the model: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"shadow_created":"' || {
    echo "shard-smoke: drift did not dark-launch a shadow: $resp" >&2; exit 1; }

# Proxied promote through non-owner a.
resp=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"model": "pso.json"}' "http://127.0.0.1:$pa/v1/promote")
v1=$(echo "$resp" | sed -n 's/.*"live_version":"\([^"]*\)".*/\1/p')
[ -n "$v1" ] && [ "$v1" != "$v0" ] || {
    echo "shard-smoke: proxied promote did not change the live version: $resp" >&2; exit 1; }

# Version coherence after the swap: all replicas serve the promoted
# version, byte-identically.
ra=$(dispatch "$pa"); rb=$(dispatch "$pb"); rc=$(dispatch "$pc")
[ "$ra" = "$rb" ] && [ "$rb" = "$rc" ] || {
    echo "shard-smoke: replicas disagree after promote" >&2; exit 1; }
echo "$ra" | grep -q "\"model_version\":\"$v1\"" || {
    echo "shard-smoke: fleet still serves $v0 after promoting $v1: $ra" >&2; exit 1; }

# Proxied rollback through non-owner c, then every replica must be
# byte-identical to the original pre-promote response again.
resp=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"model": "pso.json"}' "http://127.0.0.1:$pc/v1/rollback")
echo "$resp" | grep -q "\"live_version\":\"$v0\"" || {
    echo "shard-smoke: rollback did not restore $v0: $resp" >&2; exit 1; }
ra2=$(dispatch "$pa"); rb2=$(dispatch "$pb"); rc2=$(dispatch "$pc")
orig=$(dispatch "$pb")
[ "$ra2" = "$orig" ] && [ "$rb2" = "$orig" ] && [ "$rc2" = "$orig" ] || {
    echo "shard-smoke: replicas disagree after rollback" >&2; exit 1; }
echo "$ra2" | grep -q "\"model_version\":\"$v0\"" || {
    echo "shard-smoke: rollback did not restore version $v0 in dispatches: $ra2" >&2; exit 1; }

for p in $pids; do kill -TERM "$p"; done
for p in $pids; do
    if ! wait "$p"; then
        echo "shard-smoke: a replica exited non-zero on SIGTERM" >&2
        cat "$tmp"/serve-*.log >&2
        exit 1
    fi
done
pids=""

echo "shard-smoke: ok (3-replica fleet, proxied dispatch/feedback/promote/rollback, byte-identical across replicas)"
