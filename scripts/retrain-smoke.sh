#!/bin/sh
# opprox-serve retrain smoke: the online retraining drill against a real
# server. A model drifts (auto-recalibration off, so calibration cannot
# absorb it), the proactive controller starts correcting served budgets,
# POST /v1/retrain replays the rotated telemetry log and dark-launches a
# retrained shadow, further drifted feedback auto-promotes it, and a
# rollback restores the original version. Every request in the drill
# must stay under 500 — retraining never takes the serving path down.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/opprox" ./cmd/opprox
go build -o "$tmp/opprox-serve" ./cmd/opprox-serve

mkdir "$tmp/models"
"$tmp/opprox" -app pso -phases 2 -budget 10 -save "$tmp/models/pso.json" >/dev/null

# Tight drift thresholds; a tiny rotation size so the drill exercises
# segment replay; auto-recalibration off so the retrain pipeline is the
# only shadow source.
"$tmp/opprox-serve" -addr 127.0.0.1:0 -models "$tmp/models" \
    -drift-window 8 -drift-min-samples 4 -drift-exceed 0.5 \
    -cusum-slack 0.02 -cusum-threshold 0.3 \
    -err-window 8 -shadow-samples 4 \
    -auto-recalibrate=false \
    -feedback-log "$tmp/telemetry.jsonl" -feedback-log-max-bytes 2048 \
    -retrain -retrain-min-samples 8 \
    -proactive \
    2>"$tmp/serve.log" &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$tmp/serve.log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "retrain-smoke: server died during startup:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr" ] || {
    echo "retrain-smoke: server never reported its address" >&2
    cat "$tmp/serve.log" >&2
    exit 1
}
echo "retrain-smoke: server on $addr"

# Not -f: the drill asserts on statuses; 5xx anywhere fails it.
post() { # path body
    curl -s -D "$tmp/headers" -X POST -H 'Content-Type: application/json' \
        -d "$2" "http://$addr$1"
}
status_of() { sed -n '1s/.* \([0-9][0-9][0-9]\).*/\1/p' "$tmp/headers"; }
no5xx() {
    case "$(status_of)" in
        5*) echo "retrain-smoke: $1 returned $(status_of)" >&2; exit 1 ;;
    esac
}

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(post /v1/dispatch "$body")
no5xx /v1/dispatch
dispatch_id=$(echo "$resp" | sed -n 's/.*"dispatch_id":"\([^"]*\)".*/\1/p')
v0=$(echo "$resp" | sed -n 's/.*"model_version":"\([^"]*\)".*/\1/p')
[ -n "$dispatch_id" ] && [ -n "$v0" ] || {
    echo "retrain-smoke: dispatch response incomplete: $resp" >&2; exit 1; }

# Drifted feedback: 5 reports x 2 phases = 10 telemetry rows.
fb="{\"dispatch_id\": \"$dispatch_id\", \"observations\": [
  {\"phase\": 0, \"realized_speedup\": 10, \"realized_degradation\": 5},
  {\"phase\": 1, \"realized_speedup\": 10, \"realized_degradation\": 5}]}"
i=0
while [ $i -lt 5 ]; do
    post /v1/feedback "$fb" >/dev/null
    no5xx /v1/feedback
    i=$((i + 1))
done

# The proactive controller corrects the next dispatch's budget.
resp=$(post /v1/dispatch "$body")
no5xx /v1/dispatch
grep -qi '^x-opprox-correction:' "$tmp/headers" || {
    echo "retrain-smoke: drifted model dispatch carries no budget correction" >&2
    cat "$tmp/headers" >&2
    exit 1
}
echo "retrain-smoke: proactive correction active"

# The telemetry log rotated under the tiny size cap.
ls "$tmp"/telemetry.jsonl.?????? >/dev/null 2>&1 || {
    echo "retrain-smoke: feedback log never rotated" >&2; exit 1; }

# Retrain: replay the rotated log, fit candidates, dark-launch the winner.
resp=$(post /v1/retrain '{"model": "pso.json"}')
no5xx /v1/retrain
echo "$resp" | grep -q '"status":"shadow_created"' || {
    echo "retrain-smoke: retrain did not dark-launch: $resp" >&2; exit 1; }
shadow=$(echo "$resp" | sed -n 's/.*"shadow_version":"\([^"]*\)".*/\1/p')
[ -n "$shadow" ] || {
    echo "retrain-smoke: retrain response has no shadow version: $resp" >&2; exit 1; }
echo "retrain-smoke: retrained shadow $shadow dark-launched"

# Further drifted feedback is comparison evidence; the retrained shadow
# wins and auto-promotes.
promoted=""
i=0
while [ $i -lt 6 ]; do
    resp=$(post /v1/feedback "$fb")
    no5xx /v1/feedback
    if echo "$resp" | grep -q '"promoted":true'; then promoted=yes; break; fi
    i=$((i + 1))
done
[ -n "$promoted" ] || {
    echo "retrain-smoke: retrained shadow never auto-promoted: $resp" >&2; exit 1; }

resp=$(curl -sf "http://$addr/v1/models")
echo "$resp" | grep -q "\"live_version\":\"$shadow\"" || {
    echo "retrain-smoke: /v1/models did not flip to the retrained version: $resp" >&2; exit 1; }
echo "retrain-smoke: retrained model promoted to live"

# The promote reset the controller: the next dispatch is uncorrected.
resp=$(post /v1/dispatch "$body")
no5xx /v1/dispatch
if grep -qi '^x-opprox-correction:' "$tmp/headers"; then
    echo "retrain-smoke: budget correction survived the promote" >&2
    exit 1
fi

# One-step rollback restores the original version.
resp=$(post /v1/rollback '{"model": "pso.json"}')
no5xx /v1/rollback
echo "$resp" | grep -q "\"live_version\":\"$v0\"" || {
    echo "retrain-smoke: rollback did not restore $v0: $resp" >&2; exit 1; }

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "retrain-smoke: server exited non-zero on SIGTERM" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
pid=""

echo "retrain-smoke: ok (drift -> correction -> rotated-log retrain -> shadow -> auto-promote -> rollback)"
