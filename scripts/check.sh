#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. CI and pre-merge both run exactly this script; if it
# passes locally it passes there.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "check: all green"
