#!/bin/sh
# Tier-1 gate: formatting, vet, the determinism/concurrency analyzers,
# build, and the full test suite under the race detector. CI and
# pre-merge both run exactly this script; if it passes locally it passes
# there.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== opprox-vet =="
# Fails on any unsuppressed finding at or above warning; the JSON report
# is written regardless, so a red run still leaves machine-readable
# findings behind.
echo "opprox-vet JSON report: opprox-vet.json"
make -s vet

echo "== opprox-scan =="
# Static approximable-block discovery over the whole module; informational
# (never fails on findings) but must run clean, and shares the
# .opprox-cache content-addressed cache with opprox-vet.
echo "opprox-scan JSON report: opprox-scan.json"
make -s scan

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== opprox-serve smoke =="
# Build the server, start it on an ephemeral port, run one dispatch and
# one degraded dispatch, shut down cleanly.
sh scripts/serve-smoke.sh

echo "== opprox-serve shard smoke =="
# Start a real 3-replica sharded fleet and drive dispatch, forwarded
# feedback, promote and rollback through a non-owner replica.
sh scripts/shard-smoke.sh

echo "== opprox-serve retrain smoke =="
# Drift a model, watch the proactive controller correct budgets, retrain
# from the rotated telemetry log, auto-promote the retrained shadow,
# roll back — with no 5xx anywhere in the drill.
sh scripts/retrain-smoke.sh

# Opt-in perf gate: BENCH=1 re-runs the kernel benchmark set and fails on
# a >20% ns/op regression against the committed trajectory file. Off by
# default because benchmark wall time dwarfs the rest of the gate and
# shared CI machines are noisy.
if [ "${BENCH:-0}" = "1" ]; then
    echo "== bench regression (>20% ns/op fails) =="
    go run ./cmd/opprox-bench -against "BENCH_${PR:-10}.json" -max 0.20
fi

echo "check: all green"
