#!/bin/sh
# opprox-serve smoke: build the binaries, train a small model set, start
# the server on an ephemeral port, exercise one healthy dispatch and one
# degraded dispatch (missing model file), check /healthz, then drive the
# closed loop: drifted feedback flips the model to drifting and
# dark-launches a shadow, a manual promote makes it live, a rollback
# restores the original. Finally shut down cleanly with SIGTERM.
# Everything runs out of a throwaway directory.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
pid2=""
pid3=""
cleanup() {
    if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi
    if [ -n "$pid2" ]; then kill "$pid2" 2>/dev/null || true; fi
    if [ -n "$pid3" ]; then kill "$pid3" 2>/dev/null || true; fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/opprox" ./cmd/opprox
go build -o "$tmp/opprox-serve" ./cmd/opprox-serve

mkdir "$tmp/models"
"$tmp/opprox" -app pso -phases 2 -budget 10 -save "$tmp/models/pso.json" >/dev/null

# Tight drift thresholds so a couple of drifted reports trip the
# detector; auto-promotion off so the manual /v1/promote path is what
# the smoke exercises.
"$tmp/opprox-serve" -addr 127.0.0.1:0 -models "$tmp/models" \
    -drift-window 8 -drift-min-samples 4 -drift-exceed 0.5 \
    -cusum-slack 0.02 -cusum-threshold 0.3 \
    -auto-promote=false -feedback-log "$tmp/telemetry.jsonl" \
    2>"$tmp/serve.log" &
pid=$!

# The server prints its ephemeral address on the "listening on" line.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$tmp/serve.log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: server died during startup:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never reported its address" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

echo "serve-smoke: server on $addr"

curl -sf "http://$addr/healthz" | grep -q '"status":"ok"' || {
    echo "serve-smoke: healthz failed" >&2; exit 1; }

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
echo "$resp" | grep -q '"degraded":false' || {
    echo "serve-smoke: healthy dispatch degraded or failed: $resp" >&2; exit 1; }
echo "$resp" | grep -q 'OPPROX_PHASES=2' || {
    echo "serve-smoke: dispatch env missing phase count: $resp" >&2; exit 1; }

body='{"app": "pso", "budget": 10, "model_path": "no-such-model.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
echo "$resp" | grep -q '"degraded":true' || {
    echo "serve-smoke: missing model did not degrade: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"predicted_speedup":1' || {
    echo "serve-smoke: degraded dispatch is not the all-accurate schedule: $resp" >&2; exit 1; }

# --- closed loop: feedback -> drift -> shadow -> promote -> rollback ---

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
dispatch_id=$(echo "$resp" | sed -n 's/.*"dispatch_id":"\([^"]*\)".*/\1/p')
[ -n "$dispatch_id" ] || {
    echo "serve-smoke: dispatch response has no dispatch_id: $resp" >&2; exit 1; }
v0=$(echo "$resp" | sed -n 's/.*"model_version":"\([^"]*\)".*/\1/p')
[ -n "$v0" ] || {
    echo "serve-smoke: dispatch response has no model_version: $resp" >&2; exit 1; }

# Synthetic drift: realized values far off the predictions.
fb="{\"dispatch_id\": \"$dispatch_id\", \"observations\": [
  {\"phase\": 0, \"realized_speedup\": 10, \"realized_degradation\": 5},
  {\"phase\": 1, \"realized_speedup\": 10, \"realized_degradation\": 5}]}"
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$fb" "http://$addr/v1/feedback")
echo "$resp" | grep -q '"state":"drifting"' || {
    echo "serve-smoke: drifted feedback did not flip the model: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"shadow_created":"' || {
    echo "serve-smoke: drift did not dark-launch a shadow: $resp" >&2; exit 1; }

resp=$(curl -sf "http://$addr/v1/models")
echo "$resp" | grep -q '"health":"drifting"' || {
    echo "serve-smoke: /v1/models does not show drift: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"shadow":{' || {
    echo "serve-smoke: /v1/models does not show the shadow: $resp" >&2; exit 1; }

resp=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"model": "pso.json"}' "http://$addr/v1/promote")
v1=$(echo "$resp" | sed -n 's/.*"live_version":"\([^"]*\)".*/\1/p')
[ -n "$v1" ] && [ "$v1" != "$v0" ] || {
    echo "serve-smoke: promote did not change the live version: $resp" >&2; exit 1; }

resp=$(curl -sf "http://$addr/v1/models")
echo "$resp" | grep -q "\"live_version\":\"$v1\"" || {
    echo "serve-smoke: /v1/models did not flip to the promoted version: $resp" >&2; exit 1; }

resp=$(curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"model": "pso.json"}' "http://$addr/v1/rollback")
echo "$resp" | grep -q "\"live_version\":\"$v0\"" || {
    echo "serve-smoke: rollback did not restore the original version: $resp" >&2; exit 1; }

[ -s "$tmp/telemetry.jsonl" ] || {
    echo "serve-smoke: feedback telemetry log is empty" >&2; exit 1; }

# --- Pareto-front plan library: a model trained with -front-library
# carries its library in the file, and a server started with
# -front-library builds one for every model it loads. Both fast paths
# must serve the same plan as the plain path (volatile ids stripped).
plan_of() {
    echo "$1" | sed -e 's/"dispatch_id":"[^"]*",\{0,1\}//' \
        -e 's/"model_version":"[^"]*",\{0,1\}//'
}

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
plain_plan=$(plan_of "$resp")

"$tmp/opprox" -app pso -phases 2 -budget 10 -front-library \
    -save "$tmp/models/pso-front.json" >/dev/null
grep -q '"front_library"' "$tmp/models/pso-front.json" || {
    echo "serve-smoke: -front-library model carries no persisted library" >&2; exit 1; }
body='{"app": "pso", "budget": 10, "model_path": "pso-front.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
echo "$resp" | grep -q '"degraded":false' || {
    echo "serve-smoke: persisted-library dispatch degraded or failed: $resp" >&2; exit 1; }
[ "$(plan_of "$resp")" = "$plain_plan" ] || {
    echo "serve-smoke: persisted-library plan differs from the plain plan: $resp" >&2; exit 1; }

"$tmp/opprox-serve" -addr 127.0.0.1:0 -models "$tmp/models" -front-library \
    2>"$tmp/serve2.log" &
pid2=$!
addr2=""
i=0
while [ $i -lt 100 ]; do
    addr2=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$tmp/serve2.log")
    if [ -n "$addr2" ]; then break; fi
    if ! kill -0 "$pid2" 2>/dev/null; then
        echo "serve-smoke: -front-library server died during startup:" >&2
        cat "$tmp/serve2.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr2" ] || {
    echo "serve-smoke: -front-library server never reported its address" >&2; exit 1; }
body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr2/v1/dispatch")
echo "$resp" | grep -q '"degraded":false' || {
    echo "serve-smoke: -front-library dispatch degraded or failed: $resp" >&2; exit 1; }
[ "$(plan_of "$resp")" = "$plain_plan" ] || {
    echo "serve-smoke: -front-library plan differs from the plain plan: $resp" >&2; exit 1; }
kill -TERM "$pid2"
if ! wait "$pid2"; then
    echo "serve-smoke: -front-library server exited non-zero on SIGTERM" >&2
    cat "$tmp/serve2.log" >&2
    exit 1
fi
pid2=""
echo "serve-smoke: front-library plans match the plain path"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
pid=""

# --- overload drill: admission control + the degradation ladder ---
# A third server with a tiny per-client budget and a lockout. The drill
# first bursts past the token bucket (429 + Retry-After), then walks the
# degradation ladder deterministically via POST /v1/admission and checks
# each rung's body is byte-deterministic: cached plans keep serving,
# a coarse body equals the plain body at the quantized budget, the
# step-2 fallback is the constant all-accurate schedule, and step 3
# sheds uncached dispatches with 429 before any rate-limit rejection.
"$tmp/opprox-serve" -addr 127.0.0.1:0 -models "$tmp/models" \
    -client-rate 0.001 -client-burst 25 \
    -failure-limit 3 -lockout 60s \
    2>"$tmp/serve3.log" &
pid3=$!
addr3=""
i=0
while [ $i -lt 100 ]; do
    addr3=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$tmp/serve3.log")
    if [ -n "$addr3" ]; then break; fi
    if ! kill -0 "$pid3" 2>/dev/null; then
        echo "serve-smoke: overload server died during startup:" >&2
        cat "$tmp/serve3.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr3" ] || {
    echo "serve-smoke: overload server never reported its address" >&2; exit 1; }

# Not -sf: the drill reads 4xx statuses and headers.
post3() { # path body [extra curl args...]
    path=$1; data=$2; shift 2
    curl -s -D "$tmp/headers" -X POST -H 'Content-Type: application/json' \
        "$@" -d "$data" "http://$addr3$path"
}
status_of() { sed -n '1s/.* \([0-9][0-9][0-9]\).*/\1/p' "$tmp/headers"; }
rung_of() { tr -d '\r' <"$tmp/headers" | sed -n 's/^[Xx]-[Oo]pprox-[Rr]ung: //p'; }

# Walk the ladder first, while the client still has tokens.
body10='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
body12='{"app": "pso", "budget": 12, "model_path": "pso.json"}'
body40='{"app": "pso", "budget": 40, "model_path": "pso.json"}'

plan10=$(post3 /v1/dispatch "$body10")
[ "$(rung_of)" = "full" ] || {
    echo "serve-smoke: healthy dispatch rung $(rung_of), want full" >&2; exit 1; }

post3 /v1/admission '{"force_step": 1}' >/dev/null
resp=$(post3 /v1/dispatch "$body12")
[ "$(rung_of)" = "coarse" ] || {
    echo "serve-smoke: step-1 dispatch rung $(rung_of), want coarse" >&2; exit 1; }
[ "$resp" = "$plan10" ] || {
    echo "serve-smoke: coarse body differs from the quantized budget's plan" >&2
    echo "$resp" >&2; echo "$plan10" >&2; exit 1; }

post3 /v1/admission '{"force_step": 2}' >/dev/null
exact1=$(post3 /v1/dispatch "$body40")
[ "$(rung_of)" = "exact" ] || {
    echo "serve-smoke: step-2 dispatch rung $(rung_of), want exact" >&2; exit 1; }
echo "$exact1" | grep -q '"degraded":true' || {
    echo "serve-smoke: step-2 fallback not marked degraded: $exact1" >&2; exit 1; }
exact2=$(post3 /v1/dispatch "$body40")
[ "$exact1" = "$exact2" ] || {
    echo "serve-smoke: step-2 fallback not byte-deterministic" >&2; exit 1; }
resp=$(post3 /v1/dispatch "$body10")
[ "$(rung_of)" = "cached" ] && [ "$resp" = "$plan10" ] || {
    echo "serve-smoke: step-2 cache hit rung $(rung_of), body drifted" >&2; exit 1; }

post3 /v1/admission '{"force_step": 3}' >/dev/null
resp=$(post3 /v1/dispatch "$body40")
[ "$(status_of)" = "429" ] || {
    echo "serve-smoke: step-3 dispatch status $(status_of), want 429: $resp" >&2; exit 1; }
grep -qi '^retry-after:' "$tmp/headers" || {
    echo "serve-smoke: step-3 429 carries no Retry-After" >&2; exit 1; }
resp=$(post3 /v1/dispatch "$body10")
[ "$(status_of)" = "200" ] && [ "$resp" = "$plan10" ] || {
    echo "serve-smoke: cached plans must keep serving at step 3" >&2; exit 1; }

post3 /v1/admission '{"force_step": -1}' >/dev/null

# Burst past the per-client token bucket: degraded-but-served responses
# (the rungs above) come before flat rejection; once the bucket is dry
# every request is 429 + Retry-After.
got429=""
i=0
while [ $i -lt 40 ]; do
    post3 /v1/dispatch "$body10" >/dev/null
    if [ "$(status_of)" = "429" ]; then got429=yes; break; fi
    [ "$(status_of)" = "200" ] || {
        echo "serve-smoke: burst dispatch status $(status_of)" >&2; exit 1; }
    i=$((i + 1))
done
[ -n "$got429" ] || {
    echo "serve-smoke: burst never hit the rate limit" >&2; exit 1; }
grep -qi '^retry-after:' "$tmp/headers" || {
    echo "serve-smoke: rate-limit 429 carries no Retry-After" >&2; exit 1; }

# A different client identity still has its own budget.
resp=$(post3 /v1/dispatch "$body10" -H 'X-Opprox-Client: other')
[ "$(status_of)" = "200" ] || {
    echo "serve-smoke: fresh client rejected after another's burst: $resp" >&2; exit 1; }

# Invalid bodies lock a client out entirely.
i=0
while [ $i -lt 3 ]; do
    post3 /v1/dispatch '{broken' -H 'X-Opprox-Client: mallory' >/dev/null
    i=$((i + 1))
done
resp=$(post3 /v1/dispatch "$body10" -H 'X-Opprox-Client: mallory')
[ "$(status_of)" = "429" ] && echo "$resp" | grep -q 'locked_out' || {
    echo "serve-smoke: invalid-body client not locked out: $(status_of) $resp" >&2; exit 1; }

kill -TERM "$pid3"
if ! wait "$pid3"; then
    echo "serve-smoke: overload server exited non-zero on SIGTERM" >&2
    cat "$tmp/serve3.log" >&2
    exit 1
fi
pid3=""
echo "serve-smoke: overload drill ok (ladder rungs deterministic, 429 + Retry-After, lockout)"

echo "serve-smoke: ok (dispatch, degraded dispatch, drift -> shadow -> promote -> rollback, overload drill, clean shutdown)"
