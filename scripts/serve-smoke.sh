#!/bin/sh
# opprox-serve smoke: build the binaries, train a small model set, start
# the server on an ephemeral port, exercise one healthy dispatch and one
# degraded dispatch (missing model file), check /healthz, then shut down
# cleanly with SIGTERM. Everything runs out of a throwaway directory.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/opprox" ./cmd/opprox
go build -o "$tmp/opprox-serve" ./cmd/opprox-serve

mkdir "$tmp/models"
"$tmp/opprox" -app pso -phases 2 -budget 10 -save "$tmp/models/pso.json" >/dev/null

"$tmp/opprox-serve" -addr 127.0.0.1:0 -models "$tmp/models" 2>"$tmp/serve.log" &
pid=$!

# The server prints its ephemeral address on the "listening on" line.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|.*listening on http://\([^ ]*\).*|\1|p' "$tmp/serve.log")
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: server died during startup:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never reported its address" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

echo "serve-smoke: server on $addr"

curl -sf "http://$addr/healthz" | grep -q '"status":"ok"' || {
    echo "serve-smoke: healthz failed" >&2; exit 1; }

body='{"app": "pso", "budget": 10, "model_path": "pso.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
echo "$resp" | grep -q '"degraded":false' || {
    echo "serve-smoke: healthy dispatch degraded or failed: $resp" >&2; exit 1; }
echo "$resp" | grep -q 'OPPROX_PHASES=2' || {
    echo "serve-smoke: dispatch env missing phase count: $resp" >&2; exit 1; }

body='{"app": "pso", "budget": 10, "model_path": "no-such-model.json"}'
resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$addr/v1/dispatch")
echo "$resp" | grep -q '"degraded":true' || {
    echo "serve-smoke: missing model did not degrade: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"predicted_speedup":1' || {
    echo "serve-smoke: degraded dispatch is not the all-accurate schedule: $resp" >&2; exit 1; }

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
pid=""

echo "serve-smoke: ok (1 dispatch, 1 degraded dispatch, clean shutdown)"
