#!/bin/sh
# Reproducible benchmark harness: runs the kernel benchmark set and
# records the performance trajectory in BENCH_<pr>.json (baseline ->
# current). `make bench` runs this; re-runs refresh the "current" section
# and carry the committed baseline forward. Extra arguments are passed to
# cmd/opprox-bench (e.g. -benchtime 2s, -bench 'Predict').
set -eu

cd "$(dirname "$0")/.."

PR=${PR:-10}
go run ./cmd/opprox-bench -pr "$PR" "$@"
echo "wrote BENCH_${PR}.json"
