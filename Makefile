# Convenience wrappers; scripts/check.sh is the tier-1 gate CI runs.

.PHONY: build test check bench vet vet-json scan serve serve-smoke shard-smoke pilot-demo

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# bench runs the kernel benchmark set through the trajectory harness and
# writes BENCH_<pr>.json (see scripts/bench.sh). The root experiment-suite
# benchmarks are excluded by design; run them directly with
# `go test -bench=. .` when profiling end-to-end training.
bench:
	sh scripts/bench.sh

# serve runs the dispatch service against the MODELS directory (default
# ./models). Train model files into it first, e.g.:
#   go run ./cmd/opprox -app pso -save models/pso.json
MODELS ?= models
serve:
	go run ./cmd/opprox-serve -models $(MODELS)

# serve-smoke is the standalone form of the check.sh smoke step: build,
# train a small model, one dispatch + one degraded dispatch, clean
# shutdown.
serve-smoke:
	sh scripts/serve-smoke.sh

# shard-smoke starts a real 3-replica sharded fleet and drives the whole
# lifecycle drill (dispatch, forwarded feedback, promote, rollback)
# through a replica that does not own the model.
shard-smoke:
	sh scripts/shard-smoke.sh

# pilot-demo replays the closed serving loop end to end: train a small
# video-pipeline model, serve it, inject input drift through /v1/feedback
# and watch detection -> shadow -> promotion -> rollback.
pilot-demo:
	go run ./cmd/opprox-pilot

# vet runs the determinism/concurrency analyzers (internal/analysis) over
# the module and fails on any unsuppressed finding at or above warning.
# It always writes the machine-readable report to opprox-vet.json.
vet:
	go run ./cmd/opprox-vet -severity warning -out opprox-vet.json ./...

# vet-json emits only the JSON report on stdout (and still fails on
# findings), for machine consumption.
vet-json:
	go run ./cmd/opprox-vet -severity warning -json ./...

# scan runs static approximable-block discovery over the module and
# writes the ranked candidate report to opprox-scan.json. Both vet and
# scan cache per-package results under .opprox-cache/ keyed on content
# hashes, so warm runs re-analyze only what changed.
scan:
	go run ./cmd/opprox-scan -out opprox-scan.json ./...
