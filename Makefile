# Convenience wrappers; scripts/check.sh is the tier-1 gate CI runs.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

bench:
	go test -bench=. -benchmem
