// lulesh-blast demonstrates the phenomenon the paper opens with: the same
// approximation applied in different execution phases of a shock
// hydrodynamics simulation produces wildly different error — and can even
// change how many timesteps the simulation takes.
//
//	go run ./examples/lulesh-blast
package main

import (
	"fmt"
	"log"

	"opprox"
)

func main() {
	log.SetFlags(0)

	app := opprox.LULESH()
	runner := opprox.NewRunner(app)
	params := opprox.DefaultParams(app)

	golden, err := runner.Golden(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accurate run: %d Courant-limited timesteps, %d work units\n\n",
		golden.OuterIters, golden.Work)

	// Apply a moderately aggressive setting to one quarter of the
	// execution at a time (the paper's Figs. 4 and 5).
	cfg := opprox.Config{3, 3, 3, 3} // forces, positions, strain, timeconstraints
	fmt.Printf("config %v applied to one phase of four at a time:\n", cfg)
	fmt.Printf("%-10s  %12s  %10s  %10s\n", "phase", "degradation", "speedup", "timesteps")
	for ph := 0; ph < 4; ph++ {
		ev, err := runner.Evaluate(params, opprox.SinglePhaseSchedule(4, ph, cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d  %11.2f%%  %9.3fx  %10d\n", ph+1, ev.Degradation, ev.Speedup, ev.OuterIters)
	}
	full, err := runner.Evaluate(params, opprox.UniformSchedule(1, cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s  %11.2f%%  %9.3fx  %10d\n\n", "all", full.Degradation, full.Speedup, full.OuterIters)
	fmt.Println("early phases carry the strong shock: approximating there compounds;")
	fmt.Println("the final phase is nearly settled, so the same knob is almost free.")

	// Now let OPPROX exploit that structure under a 10% budget.
	fmt.Println("\ntraining OPPROX...")
	sys := &opprox.System{Runner: runner}
	opts := opprox.DefaultOptions()
	opts.Phases = 4
	if err := sys.Train(opts); err != nil {
		log.Fatal(err)
	}
	sched, _, err := sys.Optimize(params, 10)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := sys.Evaluate(params, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPPROX schedule: %s\n", sched)
	fmt.Printf("measured: %.3fx speedup at %.2f%% degradation (budget 10%%)\n", ev.Speedup, ev.Degradation)

	or, err := opprox.PhaseAgnosticOracle(runner, params, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best phase-agnostic setting (exhaustive): %.3fx at %.2f%%\n", or.Speedup, or.Degradation)
}
