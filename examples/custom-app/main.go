// custom-app shows how to bring your own application to OPPROX: implement
// the opprox.App interface around your kernel, expose approximable blocks
// with level knobs through the provided loop executors, and the trainer,
// models, and optimizer work unchanged.
//
// The application here is a 1D heat-diffusion solver (Jacobi iteration)
// with two approximable blocks: the stencil sweep (perforation) and the
// convergence-residual computation (memoization).
//
//	go run ./examples/custom-app
package main

import (
	"fmt"
	"log"
	"math"

	"opprox"
)

// heatApp solves u_t = u_xx on a rod with fixed hot/cold ends until the
// temperature field stops changing.
type heatApp struct{}

func (heatApp) Name() string { return "heat" }

func (heatApp) Blocks() []opprox.Block {
	return []opprox.Block{
		{Name: "stencil", Technique: opprox.Perforation, MaxLevel: 4},
		{Name: "residual", Technique: opprox.Memoization, MaxLevel: 4},
	}
}

func (heatApp) Params() []opprox.ParamSpec {
	return []opprox.ParamSpec{
		{Name: "cells", Values: []float64{24, 40}, Default: 32},
	}
}

func (heatApp) QoS(exact, approximate []float64) (float64, error) {
	// Mean absolute temperature error, percent of the hot-end scale.
	if len(exact) != len(approximate) {
		return 0, fmt.Errorf("heat: length mismatch")
	}
	sum := 0.0
	for i := range exact {
		sum += math.Abs(exact[i] - approximate[i])
	}
	return 100 * sum / float64(len(exact)), nil
}

func (a heatApp) Run(p opprox.Params, sched opprox.Schedule, baselineIters int) (opprox.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return opprox.Result{}, err
	}
	n := int(p.Vector(a.Params())[0])
	if n < 8 {
		return opprox.Result{}, fmt.Errorf("heat: need at least 8 cells")
	}
	u := make([]float64, n)
	next := make([]float64, n)
	u[0], u[n-1] = 1, 0 // hot left end, cold right end

	var rec opprox.Recorder
	const maxIters = 2500
	residual, cachedResidual := 1.0, 1.0
	for iter := 0; iter < maxIters; iter++ {
		rec.BeginIteration()
		phase := opprox.PhaseOf(iter, baselineIters, sched.Phases)
		levels := sched.LevelsAt(phase)

		// AB 1: the Jacobi sweep, perforated over interior cells; skipped
		// cells keep their previous value one more iteration.
		copy(next, u)
		updated := opprox.PerforateRotating(n-2, levels[0], iter, func(k int) {
			i := k + 1
			next[i] = 0.5 * (u[i-1] + u[i+1])
		})
		u, next = next, u
		rec.Call("stencil", uint64(updated*4))

		// AB 2: the convergence residual, memoized across iterations.
		if iter%(levels[1]+1) == 0 {
			residual = 0
			for i := 1; i < n-1; i++ {
				residual += math.Abs(0.5*(u[i-1]+u[i+1]) - u[i])
			}
			cachedResidual = residual
			rec.Call("residual", uint64(n*3))
		} else {
			residual = cachedResidual
			rec.Call("residual", 2)
		}
		rec.Overhead(uint64(n))

		if residual < 1e-4*float64(n) {
			break
		}
	}
	out := make([]float64, n)
	copy(out, u)
	return opprox.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     "stencil>residual",
	}, nil
}

func main() {
	log.SetFlags(0)

	var app opprox.App = heatApp{}
	sys := opprox.New(app)

	opts := opprox.DefaultOptions()
	opts.Phases = 4
	fmt.Println("training OPPROX on the custom heat solver...")
	if err := sys.Train(opts); err != nil {
		log.Fatal(err)
	}

	params := opprox.DefaultParams(app)
	golden, err := sys.Runner.Golden(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accurate run: %d Jacobi iterations to convergence\n\n", golden.OuterIters)

	for _, budget := range []float64{1, 3, 8} {
		sched, _, err := sys.Optimize(params, budget)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := sys.Evaluate(params, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %4.1f%%: schedule %s\n", budget, sched)
		fmt.Printf("             measured %.3fx speedup at %.2f%% error, %d iterations\n",
			ev.Speedup, ev.Degradation, ev.OuterIters)
	}
}
