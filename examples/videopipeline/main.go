// videopipeline demonstrates OPPROX on the streaming benchmark: a video
// filter chain with a rate-controlled delta encoder, where errors in early
// frames poison the rest of the stream and the filter order is part of the
// input-dependent control flow.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"

	"opprox"
)

func main() {
	log.SetFlags(0)

	app := opprox.FFmpeg()
	runner := opprox.NewRunner(app)

	// Input-dependent control flow: the filter order parameter changes
	// the sequence of approximable blocks (the paper's Fig. 7/8).
	for _, order := range []float64{0, 1} {
		p := opprox.DefaultParams(app)
		p["filterorder"] = order
		g, err := runner.Golden(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filterorder=%v: control flow %q, %d frames\n", order, g.CtxSig, g.OuterIters)
	}

	// Phase sensitivity: corrupting the opening frames (fast motion, the
	// encoder is establishing references) costs far more PSNR than
	// corrupting the settled tail.
	params := opprox.DefaultParams(app)
	cfg := opprox.Config{5, 5, 3} // edge, deflate, encode at max
	fmt.Printf("\nconfig %v per phase (PSNR vs exact pipeline; higher is better):\n", cfg)
	for ph := 0; ph < 4; ph++ {
		ev, err := runner.Evaluate(params, opprox.SinglePhaseSchedule(4, ph, cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  phase %d: PSNR %5.1f dB, speedup %.3fx\n", ph+1, 50-ev.Degradation, ev.Speedup)
	}

	// Train and optimize for a target of PSNR >= 35 dB.
	fmt.Println("\ntraining OPPROX...")
	sys := &opprox.System{Runner: runner}
	opts := opprox.DefaultOptions()
	opts.Phases = 4
	if err := sys.Train(opts); err != nil {
		log.Fatal(err)
	}
	budget := 50.0 - 35.0 // degradation = PSNRCap - target
	sched, _, err := sys.Optimize(params, budget)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := sys.Evaluate(params, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPPROX schedule for PSNR >= 35 dB: %s\n", sched)
	fmt.Printf("measured: %.3fx speedup at PSNR %.1f dB\n", ev.Speedup, 50-ev.Degradation)
}
