// Quickstart: train OPPROX on the PSO benchmark, ask for a schedule under
// a 10% error budget, and measure what the schedule actually does.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opprox"
)

func main() {
	log.SetFlags(0)

	// 1. Pick an application. PSO is the fastest to train on: a particle
	//    swarm minimizing Rosenbrock inside a convergence loop.
	app := opprox.PSO()
	sys := opprox.New(app)

	// 2. Offline training: sample the application across representative
	//    inputs, identify phases, fit per-phase speedup/QoS models.
	opts := opprox.DefaultOptions()
	opts.Phases = 4 // skip the granularity search for a faster demo
	fmt.Println("training (a few seconds of sampling)...")
	if err := sys.Train(opts); err != nil {
		log.Fatal(err)
	}
	sR2, dR2 := sys.Models.ModelQuality()
	fmt.Printf("trained on %d runs; model R²: speedup %.2f, degradation %.2f\n\n",
		len(sys.Models.Records), sR2, dR2)

	// 3. Ask for the most profitable phase-aware schedule under a 10%
	//    QoS-degradation budget.
	params := opprox.DefaultParams(app)
	sched, pred, err := sys.Optimize(params, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule (blocks: fitness, velocity, position):\n")
	for ph, cfg := range sched.Levels {
		fmt.Printf("  phase %d: levels %s\n", ph+1, cfg)
	}
	fmt.Printf("predicted: %.2fx speedup at %.1f%% degradation\n\n", pred.Speedup, pred.Degradation)

	// 4. Run the schedule for real and compare against the exact run.
	ev, err := sys.Evaluate(params, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:  %.2fx speedup (%.0f%% of the exact run's work) at %.1f%% degradation\n",
		ev.Speedup, 100/ev.Speedup, ev.Degradation)
	if ev.Degradation <= 10 {
		fmt.Println("the budget held.")
	}
}
