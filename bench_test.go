// Benchmarks: one per table and figure of the paper's evaluation, plus the
// design-choice ablations from DESIGN.md §5. Each benchmark regenerates
// its artifact through internal/experiments on a reduced ("quick") suite so
// `go test -bench=.` stays tractable; cmd/opprox-experiments produces the
// full-fidelity versions recorded in EXPERIMENTS.md.
//
// The suite (runners, golden caches, trained models) is shared across
// benchmark functions, so the reported per-op times measure the artifact's
// incremental cost once training is cached — the same way a user iterating
// on budgets experiences the system.
package opprox_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"opprox/internal/experiments"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(1, true)
	})
	return benchSuite
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig02 regenerates paper Fig. 2 (LULESH per-block sweeps).
func BenchmarkFig02(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig03 regenerates paper Fig. 3 (LULESH iteration-count drift).
func BenchmarkFig03(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig04 regenerates paper Fig. 4 (LULESH phase-specific QoS).
func BenchmarkFig04(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig05 regenerates paper Fig. 5 (LULESH phase-specific speedup).
func BenchmarkFig05(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig07 regenerates paper Fig. 7 (FFmpeg filter-order effect).
func BenchmarkFig07(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig09 regenerates paper Fig. 9 (phase QoS, four apps).
func BenchmarkFig09(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates paper Fig. 10 (phase speedup, four apps).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates paper Fig. 11 (2/4/8-phase granularity).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates paper Fig. 12 (QoS model accuracy).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates paper Fig. 13 (speedup model accuracy).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates paper Fig. 14 (OPPROX vs the oracle).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates paper Fig. 15 (phase behavior across inputs).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkTable1 regenerates paper Table 1 (apps and search spaces).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates paper Table 2 (training/optimization time).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkAblationBudgetPolicy compares ROI vs uniform budget splits.
func BenchmarkAblationBudgetPolicy(b *testing.B) { benchExperiment(b, "ablation-budget") }

// BenchmarkAblationConfidence toggles conservative confidence intervals.
func BenchmarkAblationConfidence(b *testing.B) { benchExperiment(b, "ablation-confidence") }

// BenchmarkAblationMIC toggles MIC feature filtering.
func BenchmarkAblationMIC(b *testing.B) { benchExperiment(b, "ablation-mic") }

// BenchmarkAblationIterFeature toggles the iteration-count feature.
func BenchmarkAblationIterFeature(b *testing.B) { benchExperiment(b, "ablation-iter") }

// BenchmarkAblationPhaseSearch runs Algorithm 1 per app.
func BenchmarkAblationPhaseSearch(b *testing.B) { benchExperiment(b, "ablation-phasesearch") }

// engineBenchIDs is the workload for the RunAll benchmarks: a
// representative slice of the evaluation (single-app sweeps, a four-app
// figure, a table, an ablation) rather than experiments.All(), whose
// table2 alone retrains every app at four phase granularities and pushes
// a single iteration past half an hour on one CPU. The subset exercises
// the same engine paths — ordered emission, cross-experiment training
// dedup, golden-cache sharing — at a tractable per-op cost.
var engineBenchIDs = []string{
	"fig2", "fig3", "fig7", "fig9", "table1", "ablation-phasesearch",
}

// benchRunAll regenerates the engineBenchIDs artifacts through the
// experiment engine at a given parallelism, on the shared quick suite
// (training and golden caches warm after the first iteration, so the
// steady-state number is the cost of regenerating the artifacts — the
// workload a user iterating on the evaluation actually pays).
func benchRunAll(b *testing.B, parallelism int) {
	b.Helper()
	s := suite()
	exps := make([]experiments.Experiment, 0, len(engineBenchIDs))
	for _, id := range engineBenchIDs {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(context.Background(), s, exps, parallelism)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(exps) {
			b.Fatalf("got %d results, want %d", len(results), len(exps))
		}
	}
}

// BenchmarkRunAllSerial is the baseline: the whole suite, one experiment
// at a time (what cmd/opprox-experiments does without -parallel).
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel runs the same workload with one worker per CPU
// (cmd/opprox-experiments -parallel 0).
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, runtime.NumCPU()) }
